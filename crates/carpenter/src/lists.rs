//! The list-based Carpenter variant (paper §3.1.1).
//!
//! The database is held vertically as one ascending transaction-index list
//! per item ([`TidLists`]); the current intersection is a vector of
//! `(item, cursor)` pairs where the cursor points at the first index of the
//! item's list that has not been passed yet. Because the recursion only
//! ever moves forward through the transaction indices, cursors advance
//! monotonically — the Rust analog of the pointer arithmetic the paper uses
//! in C. The cursor also yields the remaining-occurrence count for item
//! elimination in O(1).

use crate::search::{
    search, search_governed, search_governed_with_stats, search_with_stats, CarpenterConfig,
    Representation,
};
use fim_core::{
    Budget, ClosedMiner, Item, ItemSet, MineOutcome, MiningResult, RecodedDatabase, Tid, TidLists,
};
use fim_obs::{Counter, Counters};

/// The vertical (tid-list) representation.
pub struct ListRep {
    lists: TidLists,
    num_items: u32,
}

impl ListRep {
    /// Builds the representation from a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        ListRep {
            lists: TidLists::from_database(db),
            num_items: db.num_items(),
        }
    }

    /// The probe loop of [`Representation::intersect`], monomorphized over
    /// the early-stop check so the plain scan carries no bound arithmetic.
    #[allow(clippy::too_many_arguments)]
    fn scan<const EARLY: bool>(
        &self,
        state: &mut [(Item, u32)],
        tid: Tid,
        k_new: u32,
        need: u32,
        minsupp: u32,
        config: CarpenterConfig,
        counters: &mut Counters,
    ) -> (usize, Vec<(Item, u32)>) {
        let mut raw = 0usize;
        let mut sub = Vec::with_capacity(state.len());
        for (item, cur) in state.iter_mut() {
            let list = self.lists.list(*item);
            if EARLY && (list.len() as u32 - *cur) < need {
                // Early stop: even if every unscanned entry of this item's
                // list matched a future transaction, no set containing the
                // item can reach `minsupp` below this node — skip both the
                // cursor advance and the probe. The cursor may lag behind
                // `tid`, so `len - cur` only ever overestimates the true
                // remaining count: a skipped item is genuinely hopeless.
                counters.bump(Counter::TidEarlyStops);
                continue;
            }
            while (*cur as usize) < list.len() && list[*cur as usize] < tid {
                *cur += 1;
            }
            if (*cur as usize) < list.len() && list[*cur as usize] == tid {
                raw += 1;
                let remaining_after = (list.len() - *cur as usize - 1) as u32;
                if !config.item_elimination || k_new + remaining_after >= minsupp {
                    sub.push((*item, *cur + 1));
                } else {
                    counters.bump(Counter::Eliminations);
                }
            }
        }
        (raw, sub)
    }
}

impl Representation for ListRep {
    /// `(item, cursor into the item's tid list)` pairs, ascending by item.
    type State = Vec<(Item, u32)>;

    fn initial_state(&self) -> Self::State {
        (0..self.num_items).map(|i| (i, 0)).collect()
    }

    fn state_len(&self, state: &Self::State) -> usize {
        state.len()
    }

    fn num_transactions(&self) -> u32 {
        self.lists.num_transactions()
    }

    fn intersect(
        &self,
        state: &mut Self::State,
        tid: Tid,
        k_new: u32,
        minsupp: u32,
        config: CarpenterConfig,
        counters: &mut Counters,
    ) -> (usize, Self::State) {
        // `need` is how many more matches the current intersection still
        // requires; once `k_new >= minsupp` the early-stop bound can never
        // fire, so the scan can drop the per-item check entirely. The
        // split is monomorphized so the checking code costs nothing when
        // it cannot trigger (the bound is a rare event on dense data, but
        // it sat on every probe of every item).
        let need = minsupp.saturating_sub(k_new);
        if config.early_stop && need > 0 {
            self.scan::<true>(state, tid, k_new, need, minsupp, config, counters)
        } else {
            self.scan::<false>(state, tid, k_new, need, minsupp, config, counters)
        }
    }

    fn items_of(&self, state: &Self::State) -> ItemSet {
        ItemSet::from_sorted(state.iter().map(|&(i, _)| i).collect())
    }
}

/// The list-based Carpenter miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct CarpenterListMiner {
    /// Pruning configuration.
    pub config: CarpenterConfig,
}

impl CarpenterListMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: CarpenterConfig) -> Self {
        CarpenterListMiner { config }
    }

    /// Like [`ClosedMiner::mine`] but also returns the search counters
    /// (steps, absorptions, eliminations, early stops, repository probes).
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, Counters) {
        let rep = ListRep::from_database(db);
        search_with_stats(&rep, db.num_items(), minsupp, self.config)
    }

    /// Like [`ClosedMiner::mine_governed`] but also returns the counters.
    pub fn mine_governed_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        budget: &Budget,
    ) -> (MineOutcome, Counters) {
        let rep = ListRep::from_database(db);
        search_governed_with_stats(&rep, db.num_items(), minsupp, self.config, budget)
    }
}

impl ClosedMiner for CarpenterListMiner {
    fn name(&self) -> &'static str {
        "carpenter-lists"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let rep = ListRep::from_database(db);
        search(&rep, db.num_items(), minsupp, self.config)
    }

    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        let rep = ListRep::from_database(db);
        search_governed(&rep, db.num_items(), minsupp, self.config, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = CarpenterListMiner::default()
                .mine(&db, minsupp)
                .canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn pruning_ablations_agree() {
        let db = paper_db();
        let configs = [
            CarpenterConfig::default(),
            CarpenterConfig::unpruned(),
            CarpenterConfig {
                item_elimination: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                perfect_extension: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                repo_prune: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                early_stop: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                early_stop: true,
                ..CarpenterConfig::unpruned()
            },
            CarpenterConfig {
                early_stop: true,
                item_elimination: false,
                ..CarpenterConfig::default()
            },
        ];
        for minsupp in 1..=6 {
            let want = mine_reference(&db, minsupp);
            for c in configs {
                let got = CarpenterListMiner::with_config(c)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "config={c:?} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn cursor_advance_is_monotone() {
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (_, _) = rep.intersect(&mut s, 3, 1, 1, CarpenterConfig::unpruned(), &mut c);
        // after probing tid 3, every cursor sits at the first tid >= 3
        for &(item, cur) in &s {
            let list = rep.lists.list(item);
            assert!(list[..cur as usize].iter().all(|&t| t < 3), "item {item}");
            assert!(
                (cur as usize) == list.len() || list[cur as usize] >= 3,
                "item {item}"
            );
        }
    }

    #[test]
    fn item_elimination_drops_doomed_items() {
        let elim_only = CarpenterConfig {
            early_stop: false,
            ..CarpenterConfig::default()
        };
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        let mut s = rep.initial_state();
        // intersect with t5 (= tid 4, items {1,2}) at k_new=1, minsupp=5:
        // item 1 occurs in tids 0,2,3,4,5 → 1 remaining after tid 4 → 1+1 < 5 drop
        // item 2 occurs in tids 0,2,3,4,7 → 1 remaining after       → drop
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 4, 1, 5, elim_only, &mut c);
        assert_eq!(raw, 2);
        assert!(sub.is_empty());
        assert_eq!(c.get(Counter::Eliminations), 2);
        // without elimination both stay
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 4, 1, 5, CarpenterConfig::unpruned(), &mut c);
        assert_eq!(raw, 2);
        assert_eq!(rep.items_of(&sub), ItemSet::from([1, 2]));
        assert_eq!(c.get(Counter::Eliminations), 0);
    }

    #[test]
    fn early_stop_skips_hopeless_probes() {
        let es_only = CarpenterConfig {
            early_stop: true,
            ..CarpenterConfig::unpruned()
        };
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        // intersect with tid 1 ({0,3,4}) at k_new=1, minsupp=5: item 4 has
        // a 3-entry tid list (1,6,7) → 1 + 3 < 5, so its probe is skipped
        // entirely — it matches tid 1 yet counts toward neither raw nor sub,
        // and its cursor stays untouched
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 1, 1, 5, es_only, &mut c);
        assert_eq!(raw, 2, "item 4 matched but was skipped");
        assert_eq!(rep.items_of(&sub), ItemSet::from([0, 3]));
        assert_eq!(s[4], (4, 0), "skipped cursor must not advance");
        assert!(c.get(Counter::TidEarlyStops) >= 1);
        // without early stop the same probe counts item 4
        let mut s = rep.initial_state();
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut s, 1, 1, 5, CarpenterConfig::unpruned(), &mut c);
        assert_eq!(raw, 3);
        assert_eq!(rep.items_of(&sub), ItemSet::from([0, 3, 4]));
    }

    #[test]
    fn miner_name() {
        assert_eq!(CarpenterListMiner::default().name(), "carpenter-lists");
    }
}

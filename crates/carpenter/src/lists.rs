//! The list-based Carpenter variant (paper §3.1.1).
//!
//! The database is held vertically as one ascending transaction-index list
//! per item ([`TidLists`]); the current intersection is a vector of
//! `(item, cursor)` pairs where the cursor points at the first index of the
//! item's list that has not been passed yet. Because the recursion only
//! ever moves forward through the transaction indices, cursors advance
//! monotonically — the Rust analog of the pointer arithmetic the paper uses
//! in C. The cursor also yields the remaining-occurrence count for item
//! elimination in O(1).

use crate::search::{search, CarpenterConfig, Representation};
use fim_core::{ClosedMiner, Item, ItemSet, MiningResult, RecodedDatabase, Tid, TidLists};

/// The vertical (tid-list) representation.
pub struct ListRep {
    lists: TidLists,
    num_items: u32,
}

impl ListRep {
    /// Builds the representation from a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        ListRep {
            lists: TidLists::from_database(db),
            num_items: db.num_items(),
        }
    }
}

impl Representation for ListRep {
    /// `(item, cursor into the item's tid list)` pairs, ascending by item.
    type State = Vec<(Item, u32)>;

    fn initial_state(&self) -> Self::State {
        (0..self.num_items).map(|i| (i, 0)).collect()
    }

    fn state_len(&self, state: &Self::State) -> usize {
        state.len()
    }

    fn num_transactions(&self) -> u32 {
        self.lists.num_transactions()
    }

    fn intersect(
        &self,
        state: &mut Self::State,
        tid: Tid,
        k_new: u32,
        minsupp: u32,
        eliminate: bool,
    ) -> (usize, Self::State) {
        let mut raw = 0usize;
        let mut sub = Vec::with_capacity(state.len());
        for (item, cur) in state.iter_mut() {
            let list = self.lists.list(*item);
            while (*cur as usize) < list.len() && list[*cur as usize] < tid {
                *cur += 1;
            }
            if (*cur as usize) < list.len() && list[*cur as usize] == tid {
                raw += 1;
                let remaining_after = (list.len() - *cur as usize - 1) as u32;
                if !eliminate || k_new + remaining_after >= minsupp {
                    sub.push((*item, *cur + 1));
                }
            }
        }
        (raw, sub)
    }

    fn items_of(&self, state: &Self::State) -> ItemSet {
        ItemSet::from_sorted(state.iter().map(|&(i, _)| i).collect())
    }
}

/// The list-based Carpenter miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct CarpenterListMiner {
    /// Pruning configuration.
    pub config: CarpenterConfig,
}

impl CarpenterListMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: CarpenterConfig) -> Self {
        CarpenterListMiner { config }
    }
}

impl ClosedMiner for CarpenterListMiner {
    fn name(&self) -> &'static str {
        "carpenter-lists"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let rep = ListRep::from_database(db);
        search(&rep, db.num_items(), minsupp, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = CarpenterListMiner::default()
                .mine(&db, minsupp)
                .canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn pruning_ablations_agree() {
        let db = paper_db();
        let configs = [
            CarpenterConfig::default(),
            CarpenterConfig::unpruned(),
            CarpenterConfig {
                item_elimination: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                perfect_extension: false,
                ..CarpenterConfig::default()
            },
            CarpenterConfig {
                repo_prune: false,
                ..CarpenterConfig::default()
            },
        ];
        for minsupp in 1..=6 {
            let want = mine_reference(&db, minsupp);
            for c in configs {
                let got = CarpenterListMiner::with_config(c)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "config={c:?} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn cursor_advance_is_monotone() {
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        let mut s = rep.initial_state();
        let (_, _) = rep.intersect(&mut s, 3, 1, 1, false);
        // after probing tid 3, every cursor sits at the first tid >= 3
        for &(item, cur) in &s {
            let list = rep.lists.list(item);
            assert!(list[..cur as usize].iter().all(|&t| t < 3), "item {item}");
            assert!(
                (cur as usize) == list.len() || list[cur as usize] >= 3,
                "item {item}"
            );
        }
    }

    #[test]
    fn item_elimination_drops_doomed_items() {
        let db = paper_db();
        let rep = ListRep::from_database(&db);
        let mut s = rep.initial_state();
        // intersect with t5 (= tid 4, items {1,2}) at k_new=1, minsupp=5:
        // item 1 occurs in tids 0,2,3,4,5 → 1 remaining after tid 4 → 1+1 < 5 drop
        // item 2 occurs in tids 0,2,3,4,7 → 1 remaining after       → drop
        let (raw, sub) = rep.intersect(&mut s, 4, 1, 5, true);
        assert_eq!(raw, 2);
        assert!(sub.is_empty());
        // without elimination both stay
        let mut s = rep.initial_state();
        let (raw, sub) = rep.intersect(&mut s, 4, 1, 5, false);
        assert_eq!(raw, 2);
        assert_eq!(rep.items_of(&sub), ItemSet::from([1, 2]));
    }

    #[test]
    fn miner_name() {
        assert_eq!(CarpenterListMiner::default().name(), "carpenter-lists");
    }
}

//! The table-based Carpenter variant (paper §3.1.2).
//!
//! The database is the `n × |B|` suffix-count matrix of paper Table 1
//! ([`SuffixCountMatrix`]): entry `m[k][i]` is zero when item `i` is not in
//! transaction `t_k` and otherwise counts the transactions `t_j, j ≥ k`
//! containing `i`. One lookup therefore answers both the membership test
//! and the item-elimination counter, and the recursion state shrinks to a
//! bare item vector — no cursors, no per-item reduced lists. The matrix
//! costs more memory than the tid lists, but saves memory and time inside
//! the recursion, which is why the paper reports it consistently faster
//! than the list variant.

use crate::search::{
    search, search_constrained_governed_with_stats, search_constrained_with_stats, search_governed,
    search_governed_with_stats, search_with_stats, CarpenterConfig, Representation,
};
use fim_core::{
    Budget, ClosedMiner, ConstraintSet, Item, ItemSet, MineOutcome, MiningResult, RecodedDatabase,
    SuffixCountMatrix, Tid,
};
use fim_obs::{Counter, Counters};

/// The matrix (Table 1) representation.
pub struct TableRep {
    matrix: SuffixCountMatrix,
    num_items: u32,
}

impl TableRep {
    /// Builds the matrix representation from a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        TableRep {
            matrix: SuffixCountMatrix::from_database(db),
            num_items: db.num_items(),
        }
    }

    /// The underlying matrix (for inspection and the Table 1 experiment).
    pub fn matrix(&self) -> &SuffixCountMatrix {
        &self.matrix
    }
}

impl Representation for TableRep {
    /// Just the items of the current intersection, ascending.
    type State = Vec<Item>;

    fn initial_state(&self) -> Self::State {
        (0..self.num_items).collect()
    }

    fn state_len(&self, state: &Self::State) -> usize {
        state.len()
    }

    fn num_transactions(&self) -> u32 {
        self.matrix.num_transactions() as u32
    }

    fn intersect(
        &self,
        state: &mut Self::State,
        tid: Tid,
        k_new: u32,
        minsupp: u32,
        config: CarpenterConfig,
        counters: &mut Counters,
    ) -> (usize, Self::State) {
        // In the matrix representation the suffix count *is* the exact
        // remaining-occurrence bound, so early stopping and item
        // elimination coincide — either switch activates the same drop.
        let drop_hopeless = config.item_elimination || config.early_stop;
        let mut raw = 0usize;
        let mut sub = Vec::with_capacity(state.len());
        for &item in state.iter() {
            let entry = self.matrix.entry(tid, item);
            if entry != 0 {
                raw += 1;
                // `entry` counts occurrences from `tid` on, including `tid`
                if !drop_hopeless || k_new + (entry - 1) >= minsupp {
                    sub.push(item);
                } else {
                    counters.bump(Counter::Eliminations);
                }
            }
        }
        (raw, sub)
    }

    fn items_of(&self, state: &Self::State) -> ItemSet {
        ItemSet::from_sorted(state.clone())
    }
}

/// The table-based Carpenter miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct CarpenterTableMiner {
    /// Pruning configuration.
    pub config: CarpenterConfig,
}

impl CarpenterTableMiner {
    /// Creates a miner with an explicit configuration.
    pub fn with_config(config: CarpenterConfig) -> Self {
        CarpenterTableMiner { config }
    }

    /// Like [`ClosedMiner::mine`] but also returns the search counters
    /// (steps, absorptions, eliminations, repository probes).
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, Counters) {
        let rep = TableRep::from_database(db);
        search_with_stats(&rep, db.num_items(), minsupp, self.config)
    }

    /// Like [`ClosedMiner::mine_governed`] but also returns the counters.
    pub fn mine_governed_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        budget: &Budget,
    ) -> (MineOutcome, Counters) {
        let rep = TableRep::from_database(db);
        search_governed_with_stats(&rep, db.num_items(), minsupp, self.config, budget)
    }

    /// Like [`ClosedMiner::mine_constrained`] but also returns the
    /// counters (`constraint_prunes` among them).
    pub fn mine_constrained_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> (MiningResult, Counters) {
        let rep = TableRep::from_database(db);
        search_constrained_with_stats(&rep, db.num_items(), minsupp, self.config, constraints)
    }
}

impl ClosedMiner for CarpenterTableMiner {
    fn name(&self) -> &'static str {
        "carpenter-table"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let rep = TableRep::from_database(db);
        search(&rep, db.num_items(), minsupp, self.config)
    }

    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        let rep = TableRep::from_database(db);
        search_governed(&rep, db.num_items(), minsupp, self.config, budget)
    }

    fn supports_constraints(&self) -> bool {
        true
    }

    fn mine_constrained(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> MiningResult {
        self.mine_constrained_with_stats(db, minsupp, constraints).0
    }

    fn mine_constrained_governed(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
        budget: &Budget,
    ) -> MineOutcome {
        let rep = TableRep::from_database(db);
        search_constrained_governed_with_stats(
            &rep,
            db.num_items(),
            minsupp,
            self.config,
            constraints,
            budget,
        )
        .0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = CarpenterTableMiner::default()
                .mine(&db, minsupp)
                .canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn table_and_list_variants_agree() {
        use crate::lists::CarpenterListMiner;
        let db = paper_db();
        for minsupp in 1..=8 {
            let a = CarpenterTableMiner::default()
                .mine(&db, minsupp)
                .canonicalized();
            let b = CarpenterListMiner::default()
                .mine(&db, minsupp)
                .canonicalized();
            assert_eq!(a, b, "minsupp={minsupp}");
        }
    }

    #[test]
    fn intersect_uses_table_1_semantics() {
        let db = paper_db();
        let rep = TableRep::from_database(&db);
        // t2 (tid 1) = {a,d,e} = {0,3,4}; matrix row: a=3, d=6, e=3
        let mut state = rep.initial_state();
        let mut c = Counters::new();
        let (raw, sub) = rep.intersect(&mut state, 1, 1, 1, CarpenterConfig::unpruned(), &mut c);
        assert_eq!(raw, 3);
        assert_eq!(rep.items_of(&sub), ItemSet::from([0, 3, 4]));
        assert_eq!(c.get(Counter::Eliminations), 0);
        // with minsupp 5 and k_new 1: a: 1+(3-1)=3 <5 drop; d: 1+5=6 keep;
        // e: 1+2=3 <5 drop — via item elimination or (equivalently here)
        // early stopping
        for config in [
            CarpenterConfig::default(),
            CarpenterConfig {
                early_stop: true,
                ..CarpenterConfig::unpruned()
            },
        ] {
            let mut state = rep.initial_state();
            let mut c = Counters::new();
            let (raw, sub) = rep.intersect(&mut state, 1, 1, 5, config, &mut c);
            assert_eq!(raw, 3);
            assert_eq!(rep.items_of(&sub), ItemSet::from([3]));
            assert_eq!(c.get(Counter::Eliminations), 2);
        }
    }

    #[test]
    fn pruning_ablations_agree() {
        let db = paper_db();
        for minsupp in 1..=6 {
            let want = mine_reference(&db, minsupp);
            for c in [CarpenterConfig::default(), CarpenterConfig::unpruned()] {
                let got = CarpenterTableMiner::with_config(c)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "config={c:?} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn miner_name() {
        assert_eq!(CarpenterTableMiner::default().name(), "carpenter-table");
    }
}

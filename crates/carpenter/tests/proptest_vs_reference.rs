//! Property tests: both Carpenter variants must agree with the brute-force
//! reference miner on random databases, under every pruning configuration.

use fim_carpenter::{CarpenterConfig, CarpenterListMiner, CarpenterTableMiner};
use fim_core::reference::mine_reference;
use fim_core::{ClosedMiner, RecodedDatabase};
use proptest::collection::vec;
use proptest::prelude::*;

fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=9).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..12)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, num_items))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn list_variant_matches_reference(db in small_db(), minsupp in 1u32..6) {
        let want = mine_reference(&db, minsupp);
        let got = CarpenterListMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn table_variant_matches_reference(db in small_db(), minsupp in 1u32..6) {
        let want = mine_reference(&db, minsupp);
        let got = CarpenterTableMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn every_pruning_combination_matches(
        db in small_db(),
        minsupp in 1u32..5,
        pe in any::<bool>(),
        ie in any::<bool>(),
        rp in any::<bool>(),
        es in any::<bool>(),
    ) {
        let config = CarpenterConfig {
            perfect_extension: pe,
            item_elimination: ie,
            repo_prune: rp,
            early_stop: es,
        };
        let want = mine_reference(&db, minsupp);
        let list = CarpenterListMiner::with_config(config).mine(&db, minsupp).canonicalized();
        prop_assert_eq!(&list, &want, "list variant, config {:?}", config);
        let table = CarpenterTableMiner::with_config(config).mine(&db, minsupp).canonicalized();
        prop_assert_eq!(&table, &want, "table variant, config {:?}", config);
    }

    #[test]
    fn wide_transactions_match(db in (10u32..=20).prop_flat_map(|m| {
        vec(vec(0..m, (m as usize / 2)..=m as usize), 1..8)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, m))
    }), minsupp in 1u32..4) {
        // the many-items/few-transactions regime Carpenter targets
        let want = mine_reference(&db, minsupp);
        let got = CarpenterTableMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(got, want);
    }
}

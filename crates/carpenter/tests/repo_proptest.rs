//! Model-based property test: the repository prefix tree must behave
//! exactly like a set of item sets.

use fim_carpenter::Repository;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn repository_models_a_set(
        ops in vec((vec(0u32..12, 1..8usize), any::<bool>()), 1..60),
    ) {
        let mut repo = Repository::new(12);
        let mut model: HashSet<Vec<u32>> = HashSet::new();
        for (raw, do_insert) in ops {
            let mut items = raw.clone();
            items.sort_unstable();
            items.dedup();
            if do_insert {
                let was_new = repo.insert(&items);
                prop_assert_eq!(was_new, model.insert(items.clone()), "insert {:?}", items);
            } else {
                prop_assert_eq!(repo.contains(&items), model.contains(&items), "contains {:?}", items);
            }
            prop_assert_eq!(repo.len(), model.len());
        }
        // final sweep: membership agrees for every inserted set and for
        // perturbed variants
        for set in &model {
            prop_assert!(repo.contains(set));
            if set.len() > 1 {
                prop_assert_eq!(repo.contains(&set[1..]), model.contains(&set[1..]));
                prop_assert_eq!(
                    repo.contains(&set[..set.len() - 1]),
                    model.contains(&set[..set.len() - 1])
                );
            }
        }
    }

    #[test]
    fn subsets_and_supersets_are_distinct_members(base in vec(0u32..10, 2..6usize)) {
        let mut items = base.clone();
        items.sort_unstable();
        items.dedup();
        prop_assume!(items.len() >= 2);
        let mut repo = Repository::new(10);
        repo.insert(&items);
        // no proper prefix/suffix is a member
        for k in 1..items.len() {
            prop_assert!(!repo.contains(&items[..k]));
            prop_assert!(!repo.contains(&items[k..]));
        }
    }
}

//! Recoding: the preprocessing pass every miner shares.
//!
//! Virtually all frequent item set mining algorithms start with one pass over
//! the database to count item frequencies, remove infrequent items, choose an
//! item-code order, and reorder the transactions (paper §3.2, §3.4). The
//! result is a [`RecodedDatabase`] with dense item codes `0..num_items` in
//! the requested [`ItemOrder`] and transactions in the requested
//! [`TransactionOrder`]. Mined results are translated back to the raw codes
//! of the source [`TransactionDatabase`] via [`Recode`].
//!
//! Removing items with frequency below the minimum support is lossless for
//! *frequent* closed sets: a closed set containing an infrequent item has at
//! most that item's support and is therefore itself infrequent.

use crate::{
    database::TransactionDatabase,
    itemset::ItemSet,
    order::{ItemOrder, TransactionOrder},
    prepare::cmp_size_then_desc_lex,
    Item, Tid,
};

/// The code and transaction mappings produced by recoding.
#[derive(Clone, Debug)]
pub struct Recode {
    /// Raw catalog code → new dense code (`None` for filtered items).
    pub item_to_new: Vec<Option<Item>>,
    /// New dense code → raw catalog code.
    pub item_to_old: Vec<Item>,
    /// New transaction index → original transaction index.
    pub tx_to_old: Vec<Tid>,
}

impl Recode {
    /// Translates an item set over new codes back to raw catalog codes.
    pub fn decode_items(&self, items: &ItemSet) -> ItemSet {
        ItemSet::new(items.iter().map(|i| self.item_to_old[i as usize]).collect())
    }

    /// Translates an item set over raw catalog codes to new codes.
    ///
    /// Returns `None` if any item of the set was filtered out.
    pub fn encode_items(&self, items: &ItemSet) -> Option<ItemSet> {
        let mut out = Vec::with_capacity(items.len());
        for i in items.iter() {
            out.push(*self.item_to_new.get(i as usize)?.as_ref()?);
        }
        Some(ItemSet::new(out))
    }
}

/// The streaming half of recoding: everything [`RecodedDatabase::prepare`]
/// derives from the item-frequency histogram, without the transactions.
///
/// The out-of-core pipeline cannot materialize the database, so recoding
/// splits into two passes: pass 1 streams the input once and counts item
/// frequencies (a `Vec<u32>` over raw catalog codes — the only state whose
/// size is bounded by the item universe, not the transaction count); this
/// constructor then fixes the surviving items, their dense codes, and the
/// global support snapshot; pass 2 re-reads the input and feeds each
/// transaction through [`encode_transaction`](Self::encode_transaction).
///
/// The item selection and ordering are exactly `prepare`'s: items with
/// frequency `< minsupp` are dropped (lossless for frequent closed sets),
/// survivors are ordered by `item_order` with the raw code as tie-breaker.
/// Because dropping infrequent items never changes a surviving item's
/// support, the dense-code support snapshot is the raw histogram restricted
/// to the survivors — no second counting pass is needed.
#[derive(Clone, Debug)]
pub struct StreamingRecode {
    item_to_new: Vec<Option<Item>>,
    item_to_old: Vec<Item>,
    item_supports: Vec<u32>,
    minsupp_used: u32,
}

impl StreamingRecode {
    /// Fixes the recoding from a raw item-frequency histogram (indexed by
    /// raw catalog code; the frequency counts each transaction once per
    /// item it contains). `minsupp` is clamped to at least 1.
    pub fn from_counts(freq: &[u32], minsupp: u32, item_order: ItemOrder) -> Self {
        let minsupp = minsupp.max(1);
        let mut surviving: Vec<Item> = (0..freq.len() as Item)
            .filter(|&i| freq[i as usize] >= minsupp)
            .collect();
        match item_order {
            ItemOrder::AscendingFrequency => {
                surviving.sort_by_key(|&i| (freq[i as usize], i));
            }
            ItemOrder::DescendingFrequency => {
                surviving.sort_by_key(|&i| (std::cmp::Reverse(freq[i as usize]), i));
            }
            ItemOrder::Original => {}
        }
        let mut item_to_new: Vec<Option<Item>> = vec![None; freq.len()];
        for (new, &old) in surviving.iter().enumerate() {
            item_to_new[old as usize] = Some(new as Item);
        }
        let item_supports = surviving.iter().map(|&old| freq[old as usize]).collect();
        StreamingRecode {
            item_to_new,
            item_to_old: surviving,
            item_supports,
            minsupp_used: minsupp,
        }
    }

    /// Recodes one transaction of raw catalog codes into sorted dense
    /// codes, dropping filtered items, into `out` (cleared first). Returns
    /// `false` when the transaction became empty (the caller skips it, as
    /// `prepare` drops empties).
    pub fn encode_transaction(&self, raw: &[Item], out: &mut Vec<Item>) -> bool {
        out.clear();
        for &i in raw {
            if let Some(new) = self.item_to_new.get(i as usize).copied().flatten() {
                out.push(new);
            }
        }
        out.sort_unstable();
        out.dedup();
        !out.is_empty()
    }

    /// Number of surviving dense item codes.
    pub fn num_items(&self) -> u32 {
        self.item_to_old.len() as u32
    }

    /// Global support of every dense item code over the whole database.
    pub fn item_supports(&self) -> &[u32] {
        &self.item_supports
    }

    /// Dense code → raw catalog code.
    pub fn item_to_old(&self) -> &[Item] {
        &self.item_to_old
    }

    /// The minimum support the recoding was fixed for.
    pub fn minsupp_used(&self) -> u32 {
        self.minsupp_used
    }

    /// Translates an item set over dense codes back to raw catalog codes.
    pub fn decode_items(&self, items: &ItemSet) -> ItemSet {
        ItemSet::new(items.iter().map(|i| self.item_to_old[i as usize]).collect())
    }
}

/// A mining-ready database: dense recoded items, ordered transactions.
///
/// All miner implementations in this workspace take a `&RecodedDatabase`.
#[derive(Clone, Debug)]
pub struct RecodedDatabase {
    transactions: Vec<Box<[Item]>>,
    num_items: u32,
    item_supports: Vec<u32>,
    recode: Recode,
    original_transactions: u32,
    minsupp_used: u32,
}

impl RecodedDatabase {
    /// Recode `db` for mining with minimum support `minsupp`.
    ///
    /// Items with frequency `< minsupp` are removed (`minsupp` is clamped to
    /// at least 1); transactions that become empty are dropped. Item codes
    /// and transaction order follow `item_order` / `tx_order`.
    pub fn prepare(
        db: &TransactionDatabase,
        minsupp: u32,
        item_order: ItemOrder,
        tx_order: TransactionOrder,
    ) -> Self {
        Self::prepare_excluding(db, minsupp, item_order, tx_order, &ItemSet::empty())
    }

    /// Like [`prepare`](Self::prepare), additionally projecting away the
    /// `exclude` items (raw catalog codes): they are dropped from every
    /// transaction exactly as infrequent items are, before transactions are
    /// reordered and empties removed. This is how the must-exclude
    /// constraint is pushed — see the semantics note in
    /// [`crate::constraint`].
    pub fn prepare_excluding(
        db: &TransactionDatabase,
        minsupp: u32,
        item_order: ItemOrder,
        tx_order: TransactionOrder,
        exclude: &ItemSet,
    ) -> Self {
        let minsupp = minsupp.max(1);
        let freq = db.item_frequencies();

        // Select surviving raw codes and order them.
        let mut surviving: Vec<Item> = (0..freq.len() as Item)
            .filter(|&i| freq[i as usize] >= minsupp && !exclude.contains(i))
            .collect();
        match item_order {
            ItemOrder::AscendingFrequency => {
                surviving.sort_by_key(|&i| (freq[i as usize], i));
            }
            ItemOrder::DescendingFrequency => {
                surviving.sort_by_key(|&i| (std::cmp::Reverse(freq[i as usize]), i));
            }
            ItemOrder::Original => { /* already ascending raw code */ }
        }

        let mut item_to_new: Vec<Option<Item>> = vec![None; freq.len()];
        for (new, &old) in surviving.iter().enumerate() {
            item_to_new[old as usize] = Some(new as Item);
        }

        // Map transactions, dropping empties.
        let mut txs: Vec<(Tid, Box<[Item]>)> = Vec::with_capacity(db.num_transactions());
        let mut buf: Vec<Item> = Vec::new();
        for (tid, t) in db.transactions().iter().enumerate() {
            buf.clear();
            for it in t.iter() {
                if let Some(new) = item_to_new[it as usize] {
                    buf.push(new);
                }
            }
            if buf.is_empty() {
                continue;
            }
            buf.sort_unstable();
            txs.push((tid as Tid, buf.clone().into_boxed_slice()));
        }

        match tx_order {
            TransactionOrder::AscendingSize => {
                txs.sort_by(|a, b| cmp_size_then_desc_lex(&a.1, &b.1));
            }
            TransactionOrder::DescendingSize => {
                txs.sort_by(|a, b| cmp_size_then_desc_lex(&b.1, &a.1));
            }
            TransactionOrder::Original => {}
        }

        let mut item_supports = vec![0u32; surviving.len()];
        for (_, t) in &txs {
            for &i in t.iter() {
                item_supports[i as usize] += 1;
            }
        }

        let (tx_to_old, transactions): (Vec<Tid>, Vec<Box<[Item]>>) = txs.into_iter().unzip();

        RecodedDatabase {
            transactions,
            num_items: surviving.len() as u32,
            item_supports,
            recode: Recode {
                item_to_new,
                item_to_old: surviving,
                tx_to_old,
            },
            original_transactions: db.num_transactions() as u32,
            minsupp_used: minsupp,
        }
    }

    /// Builds a recoded database directly from dense-code transactions,
    /// without filtering or reordering.
    ///
    /// Intended for tests and for algorithm inputs that are already
    /// preprocessed. Transactions are canonicalized (sorted, deduplicated
    /// within each transaction); empty transactions are kept out.
    pub fn from_dense(transactions: Vec<Vec<Item>>, num_items: u32) -> Self {
        let mut txs: Vec<Box<[Item]>> = Vec::with_capacity(transactions.len());
        let mut tx_to_old = Vec::new();
        let original = transactions.len() as u32;
        for (tid, mut t) in transactions.into_iter().enumerate() {
            t.sort_unstable();
            t.dedup();
            assert!(
                t.iter().all(|&i| i < num_items),
                "item code out of range for num_items"
            );
            if t.is_empty() {
                continue;
            }
            tx_to_old.push(tid as Tid);
            txs.push(t.into_boxed_slice());
        }
        let mut item_supports = vec![0u32; num_items as usize];
        for t in &txs {
            for &i in t.iter() {
                item_supports[i as usize] += 1;
            }
        }
        RecodedDatabase {
            transactions: txs,
            num_items,
            item_supports,
            recode: Recode {
                item_to_new: (0..num_items).map(Some).collect(),
                item_to_old: (0..num_items).collect(),
                tx_to_old,
            },
            original_transactions: original,
            minsupp_used: 1,
        }
    }

    /// The transactions, each a strictly ascending slice of dense codes.
    pub fn transactions(&self) -> &[Box<[Item]>] {
        &self.transactions
    }

    /// One transaction by index.
    pub fn transaction(&self, tid: Tid) -> &[Item] {
        &self.transactions[tid as usize]
    }

    /// Number of (surviving, non-empty) transactions.
    pub fn num_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Number of transactions in the source database (including dropped).
    pub fn original_transactions(&self) -> u32 {
        self.original_transactions
    }

    /// Number of dense item codes.
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Support of every dense item code in the recoded database.
    pub fn item_supports(&self) -> &[u32] {
        &self.item_supports
    }

    /// The minimum support the recoding was prepared for.
    pub fn minsupp_used(&self) -> u32 {
        self.minsupp_used
    }

    /// The code/transaction mappings back to the source database.
    pub fn recode(&self) -> &Recode {
        &self.recode
    }

    /// Support of an item set by scanning (used by tests and verification).
    pub fn support(&self, items: &ItemSet) -> u32 {
        self.transactions
            .iter()
            .filter(|t| crate::itemset::is_subset(items.as_slice(), t))
            .count() as u32
    }

    /// Largest transaction size.
    pub fn max_transaction_len(&self) -> usize {
        self.transactions.iter().map(|t| t.len()).max().unwrap_or(0)
    }

    /// The fill-rate estimate driving representation selection.
    ///
    /// `O(num_items)` — supports are already counted, so no pass over the
    /// transactions is needed.
    pub fn density(&self) -> Density {
        let rows = self.num_transactions();
        let cols = self.num_items as usize;
        let ones: u64 = self.item_supports.iter().map(|&s| s as u64).sum();
        let cells = rows as u64 * cols as u64;
        Density {
            rows,
            cols,
            ones,
            fill: if cells == 0 {
                0.0
            } else {
                ones as f64 / cells as f64
            },
            avg_row_len: if rows == 0 {
                0.0
            } else {
                ones as f64 / rows as f64
            },
        }
    }
}

/// Shape and fill statistics of a [`RecodedDatabase`], the input to
/// representation selection (`fill` = ones ÷ rows×cols).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Density {
    /// Number of transactions.
    pub rows: usize,
    /// Number of items.
    pub cols: usize,
    /// Total item occurrences (sum of transaction lengths).
    pub ones: u64,
    /// `ones / (rows × cols)`, in `[0, 1]`; `0.0` for a degenerate
    /// (empty) database.
    pub fill: f64,
    /// Mean transaction length (`ones / rows`; `0.0` when empty).
    pub avg_row_len: f64,
}

impl Density {
    /// Whether the database has no cells at all (no transactions, no
    /// items, or no occurrences).
    pub fn is_degenerate(&self) -> bool {
        self.rows == 0 || self.cols == 0 || self.ones == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> TransactionDatabase {
        TransactionDatabase::from_named(&[
            vec!["a", "b", "c"],
            vec!["a", "d", "e"],
            vec!["b", "c", "d"],
            vec!["a", "b", "c", "d"],
            vec!["b", "c"],
            vec!["a", "b", "d"],
            vec!["d", "e"],
            vec!["c", "d", "e"],
        ])
    }

    #[test]
    fn ascending_frequency_codes() {
        let db = paper_db();
        let r = RecodedDatabase::prepare(
            &db,
            1,
            ItemOrder::AscendingFrequency,
            TransactionOrder::Original,
        );
        // raw freqs: a=4 b=5 c=5 d=6 e=3  → order e(3),a(4),b(5),c(5),d(6)
        assert_eq!(r.recode().item_to_old, vec![4, 0, 1, 2, 3]);
        assert_eq!(r.item_supports(), &[3, 4, 5, 5, 6]);
        assert_eq!(r.num_items(), 5);
        assert_eq!(r.num_transactions(), 8);
    }

    #[test]
    fn infrequent_items_filtered_and_empty_dropped() {
        let db = TransactionDatabase::from_named(&[vec!["x"], vec!["a", "b"], vec!["a", "b", "y"]]);
        let r = RecodedDatabase::prepare(
            &db,
            2,
            ItemOrder::AscendingFrequency,
            TransactionOrder::Original,
        );
        // x and y have freq 1 < 2; transaction {x} becomes empty.
        assert_eq!(r.num_items(), 2);
        assert_eq!(r.num_transactions(), 2);
        assert_eq!(r.original_transactions(), 3);
        assert_eq!(r.recode().tx_to_old, vec![1, 2]);
        for t in r.transactions() {
            assert_eq!(t.len(), 2);
        }
    }

    #[test]
    fn transaction_order_ascending_size() {
        let db = paper_db();
        let r =
            RecodedDatabase::prepare(&db, 1, ItemOrder::Original, TransactionOrder::AscendingSize);
        let sizes: Vec<usize> = r.transactions().iter().map(|t| t.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        assert_eq!(r.transactions()[0].len(), 2);
        assert_eq!(r.transactions().last().unwrap().len(), 4);
    }

    #[test]
    fn transaction_order_descending_size() {
        let db = paper_db();
        let r = RecodedDatabase::prepare(
            &db,
            1,
            ItemOrder::Original,
            TransactionOrder::DescendingSize,
        );
        let sizes: Vec<usize> = r.transactions().iter().map(|t| t.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn decode_roundtrip() {
        let db = paper_db();
        let r = RecodedDatabase::prepare(
            &db,
            1,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        let raw = ItemSet::from([1, 2, 3]); // b,c,d
        let enc = r.recode().encode_items(&raw).unwrap();
        let dec = r.recode().decode_items(&enc);
        assert_eq!(dec, raw);
    }

    #[test]
    fn encode_filtered_item_is_none() {
        let db = TransactionDatabase::from_named(&[vec!["a", "b"], vec!["a"]]);
        let r = RecodedDatabase::prepare(&db, 2, ItemOrder::Original, TransactionOrder::Original);
        assert!(r.recode().encode_items(&ItemSet::from([1])).is_none());
        assert!(r.recode().encode_items(&ItemSet::from([0])).is_some());
    }

    #[test]
    fn support_scan_matches_raw_database() {
        let db = paper_db();
        let r = RecodedDatabase::prepare(
            &db,
            1,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        // support is invariant under recoding+reordering
        let raw = ItemSet::from([1, 2]); // b,c
        let enc = r.recode().encode_items(&raw).unwrap();
        assert_eq!(r.support(&enc), db.support(&raw));
    }

    #[test]
    fn from_dense_canonicalizes() {
        let r = RecodedDatabase::from_dense(vec![vec![2, 0, 2], vec![], vec![1]], 3);
        assert_eq!(r.num_transactions(), 2);
        assert_eq!(r.transaction(0), &[0, 2]);
        assert_eq!(r.item_supports(), &[1, 1, 1]);
        assert_eq!(r.original_transactions(), 3);
        assert_eq!(r.max_transaction_len(), 2);
    }

    #[test]
    fn density_counts_fill() {
        let r = RecodedDatabase::from_dense(vec![vec![0, 1, 2], vec![0, 1], vec![2]], 4);
        let d = r.density();
        assert_eq!(d.rows, 3);
        assert_eq!(d.cols, 4);
        assert_eq!(d.ones, 6);
        assert!((d.fill - 0.5).abs() < 1e-12);
        assert!((d.avg_row_len - 2.0).abs() < 1e-12);
        assert!(!d.is_degenerate());
        let empty = RecodedDatabase::from_dense(vec![], 5);
        let de = empty.density();
        assert!(de.is_degenerate());
        assert_eq!(de.fill, 0.0);
        assert_eq!(de.avg_row_len, 0.0);
    }

    /// The streaming recode must agree with `prepare` on item selection,
    /// dense codes, per-item supports, and per-transaction encodings.
    #[test]
    fn streaming_recode_matches_prepare() {
        let db = paper_db();
        for minsupp in [1, 2, 4, 5] {
            for order in [
                ItemOrder::AscendingFrequency,
                ItemOrder::DescendingFrequency,
                ItemOrder::Original,
            ] {
                let want =
                    RecodedDatabase::prepare(&db, minsupp, order, TransactionOrder::Original);
                let sr = StreamingRecode::from_counts(&db.item_frequencies(), minsupp, order);
                assert_eq!(sr.num_items(), want.num_items());
                assert_eq!(sr.item_to_old(), &want.recode().item_to_old[..]);
                assert_eq!(sr.item_supports(), want.item_supports());
                assert_eq!(sr.minsupp_used(), want.minsupp_used());
                let mut buf = Vec::new();
                let mut encoded: Vec<Vec<Item>> = Vec::new();
                for t in db.transactions() {
                    if sr.encode_transaction(t.as_slice(), &mut buf) {
                        encoded.push(buf.clone());
                    }
                }
                let want_txs: Vec<Vec<Item>> =
                    want.transactions().iter().map(|t| t.to_vec()).collect();
                assert_eq!(encoded, want_txs, "minsupp={minsupp} order={order:?}");
            }
        }
    }

    #[test]
    fn streaming_recode_decodes_and_handles_out_of_range() {
        let sr = StreamingRecode::from_counts(&[3, 1, 2], 2, ItemOrder::AscendingFrequency);
        // survivors: item 2 (freq 2), item 0 (freq 3) → dense 0 = raw 2
        assert_eq!(sr.num_items(), 2);
        assert_eq!(sr.item_to_old(), &[2, 0]);
        assert_eq!(sr.item_supports(), &[2, 3]);
        let mut buf = Vec::new();
        // raw code 9 is beyond the histogram: treated as filtered, not a panic
        assert!(sr.encode_transaction(&[0, 1, 9], &mut buf));
        assert_eq!(buf, vec![1]);
        assert!(!sr.encode_transaction(&[1, 9], &mut buf));
        assert_eq!(
            sr.decode_items(&ItemSet::from([0, 1])),
            ItemSet::from([0, 2])
        );
    }

    #[test]
    fn minsupp_zero_clamped() {
        let db = paper_db();
        let r = RecodedDatabase::prepare(&db, 0, ItemOrder::Original, TransactionOrder::Original);
        assert_eq!(r.minsupp_used(), 1);
        assert_eq!(r.num_items(), 5);
    }
}

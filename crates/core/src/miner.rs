//! The miner abstraction: every algorithm in this workspace implements
//! [`ClosedMiner`] and produces a [`MiningResult`], so algorithms can be
//! swapped, cross-checked, and benchmarked interchangeably.

use crate::{
    constraint::{apply_constraints_owned, ConstraintSet},
    database::TransactionDatabase,
    govern::{Budget, MineOutcome, Progress},
    itemset::ItemSet,
    order::{ItemOrder, TransactionOrder},
    recode::{Recode, RecodedDatabase},
};
use std::fmt;

/// One mined closed frequent item set with its support.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FoundSet {
    /// The item set (dense codes of the database the miner ran on).
    pub items: ItemSet,
    /// Its (absolute) support.
    pub support: u32,
}

impl FoundSet {
    /// Convenience constructor.
    pub fn new(items: ItemSet, support: u32) -> Self {
        FoundSet { items, support }
    }
}

impl fmt::Debug for FoundSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}:{}", self.items, self.support)
    }
}

/// The complete result of a mining run.
///
/// Miners may emit sets in any order; [`MiningResult::canonicalize`] sorts
/// them into the unique canonical order used for equality checks in tests
/// and verification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MiningResult {
    /// The mined closed frequent item sets.
    pub sets: Vec<FoundSet>,
}

impl MiningResult {
    /// Creates an empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mined sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no sets were mined.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Sorts the sets into canonical order (by cardinality, then items,
    /// then support) and asserts there are no duplicate item sets.
    pub fn canonicalize(&mut self) -> &mut Self {
        self.sets.sort_unstable_by(|a, b| {
            (a.items.len(), &a.items, a.support).cmp(&(b.items.len(), &b.items, b.support))
        });
        debug_assert!(
            self.sets.windows(2).all(|w| w[0].items != w[1].items),
            "duplicate item sets in mining result"
        );
        self
    }

    /// Returns a canonicalized copy.
    pub fn canonicalized(&self) -> Self {
        let mut c = self.clone();
        c.canonicalize();
        c
    }

    /// Translates all sets from dense codes back to raw catalog codes.
    pub fn decode(&self, recode: &Recode) -> MiningResult {
        MiningResult {
            sets: self
                .sets
                .iter()
                .map(|s| FoundSet::new(recode.decode_items(&s.items), s.support))
                .collect(),
        }
    }

    /// The support of the longest set(s), useful in reports.
    pub fn max_set_len(&self) -> usize {
        self.sets.iter().map(|s| s.items.len()).max().unwrap_or(0)
    }

    /// Looks up the support of an exact item set (after canonicalize, by
    /// linear scan — intended for tests).
    pub fn support_of(&self, items: &ItemSet) -> Option<u32> {
        self.sets
            .iter()
            .find(|s| &s.items == items)
            .map(|s| s.support)
    }
}

impl FromIterator<FoundSet> for MiningResult {
    fn from_iter<T: IntoIterator<Item = FoundSet>>(iter: T) -> Self {
        MiningResult {
            sets: iter.into_iter().collect(),
        }
    }
}

/// A closed frequent item set miner.
///
/// Implementations must report **exactly** the closed item sets of `db` with
/// support ≥ `minsupp` (the empty set is never reported), each with its exact
/// support. This contract is enforced pairwise across all implementations by
/// the integration test suite.
pub trait ClosedMiner {
    /// Short stable name used in benchmark output (e.g. `"ista"`).
    fn name(&self) -> &'static str;

    /// Mines all closed frequent item sets of `db` at `minsupp ≥ 1`.
    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult;

    /// Mines under a resource [`Budget`], returning a structured
    /// [`MineOutcome`].
    ///
    /// The default implementation checks the budget once up front and then
    /// runs [`ClosedMiner::mine`] to completion, so miners without a
    /// governed hot loop still honour an already-expired deadline or an
    /// already-cancelled token. Miners with governed hot loops (IsTa,
    /// Carpenter, Eclat) override this to interrupt mid-run and return the
    /// exact closed sets of the processed prefix.
    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        let mut gov = budget.start();
        if let Some(reason) = gov.check(0, 0, 0) {
            return MineOutcome::Interrupted {
                partial: MiningResult::new(),
                reason,
                progress: Progress {
                    processed: 0,
                    total: Some(db.transactions().len() as u64),
                },
            };
        }
        MineOutcome::complete(self.mine(db, minsupp))
    }

    /// Whether this miner pushes constraints into its search loops.
    ///
    /// Miners that return `false` still mine correctly under constraints:
    /// the constrained drivers fall back to post-filtering their
    /// unconstrained output through
    /// [`apply_constraints`](crate::constraint::apply_constraints).
    fn supports_constraints(&self) -> bool {
        false
    }

    /// Mines the closed frequent sets of `db` that satisfy `constraints`.
    ///
    /// `constraints` is expressed over the dense codes of `db`, with an
    /// empty exclude set — exclusion is a database projection applied by
    /// [`RecodedDatabase::prepare_excluding`] before the miner runs, never
    /// a per-set predicate (see [`crate::constraint`]). Implementations
    /// must return **exactly** the subset of their unconstrained output
    /// that [`ConstraintSet::satisfied_by`] accepts; pushing the
    /// constraints deeper than the final emission gate is the performance
    /// contract this method exists for.
    fn mine_constrained(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> MiningResult {
        apply_constraints_owned(self.mine(db, minsupp), constraints)
    }

    /// Governed variant of [`mine_constrained`](Self::mine_constrained).
    ///
    /// The default post-filters whichever outcome (complete or partial)
    /// the governed mine produces; an interrupted partial filtered this
    /// way remains an exact subset of the complete constrained result.
    fn mine_constrained_governed(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
        budget: &Budget,
    ) -> MineOutcome {
        self.mine_governed(db, minsupp, budget)
            .map_result(|r| apply_constraints_owned(r, constraints))
    }
}

/// End-to-end convenience: recode `db` with the miner-friendly default
/// orders, run `miner`, and decode the result back to raw catalog codes.
pub fn mine_closed(
    db: &TransactionDatabase,
    minsupp: u32,
    miner: &dyn ClosedMiner,
) -> MiningResult {
    mine_closed_with_orders(
        db,
        minsupp,
        miner,
        ItemOrder::default(),
        TransactionOrder::default(),
    )
}

/// Like [`mine_closed`], but with a *relative* minimum support given as a
/// fraction of the transaction count (paper §2.1 notes the two definitions
/// are equivalent). The absolute threshold is `ceil(fraction · n)`,
/// clamped to at least 1.
///
/// # Panics
///
/// Panics if `fraction` is not within `0.0..=1.0`.
pub fn mine_closed_relative(
    db: &TransactionDatabase,
    fraction: f64,
    miner: &dyn ClosedMiner,
) -> MiningResult {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "relative support must be a fraction in [0, 1]"
    );
    let minsupp = (fraction * db.num_transactions() as f64).ceil() as u32;
    mine_closed(db, minsupp.max(1), miner)
}

/// Like [`mine_closed_with_orders`], but governed by a resource [`Budget`]:
/// recodes `db`, runs [`ClosedMiner::mine_governed`], and decodes +
/// canonicalizes whichever result (complete or partial) comes back.
pub fn mine_closed_governed(
    db: &TransactionDatabase,
    minsupp: u32,
    miner: &dyn ClosedMiner,
    budget: &Budget,
    item_order: ItemOrder,
    tx_order: TransactionOrder,
) -> MineOutcome {
    let recoded = RecodedDatabase::prepare(db, minsupp, item_order, tx_order);
    miner
        .mine_governed(&recoded, minsupp.max(1), budget)
        .map_result(|r| {
            let mut decoded = r.decode(recoded.recode());
            decoded.canonicalize();
            decoded
        })
}

/// End-to-end constrained mining: validates `constraints`, recodes `db`
/// with the must-exclude items projected away
/// ([`RecodedDatabase::prepare_excluding`]), translates the remaining
/// constraints to dense codes, mines — pushed into the miner's search
/// loops when `push` is set and the miner
/// [`supports_constraints`](ClosedMiner::supports_constraints), post-filtered
/// otherwise — and decodes + canonicalizes the result.
///
/// An include item that did not survive recoding (infrequent, unknown, or
/// itself excluded) makes the constraints unsatisfiable: the result is
/// empty without running the miner.
///
/// # Panics
///
/// Panics if `constraints` fail [`ConstraintSet::validate`] — callers
/// (the CLI) surface contradictory constraints as usage errors first.
pub fn mine_closed_constrained(
    db: &TransactionDatabase,
    minsupp: u32,
    miner: &dyn ClosedMiner,
    constraints: &ConstraintSet,
    item_order: ItemOrder,
    tx_order: TransactionOrder,
    push: bool,
) -> MiningResult {
    constraints
        .validate()
        .expect("contradictory constraints reached the mining driver");
    let recoded =
        RecodedDatabase::prepare_excluding(db, minsupp, item_order, tx_order, &constraints.exclude);
    let dense = match constraints.encode(recoded.recode()) {
        Some(d) => d,
        None => return MiningResult::new(),
    };
    let result = if push && miner.supports_constraints() {
        miner.mine_constrained(&recoded, minsupp.max(1), &dense)
    } else {
        apply_constraints_owned(miner.mine(&recoded, minsupp.max(1)), &dense)
    };
    let mut decoded = result.decode(recoded.recode());
    decoded.canonicalize();
    decoded
}

/// Governed variant of [`mine_closed_constrained`]: same preparation and
/// push/post-filter split, but the miner runs under `budget` and the
/// outcome (complete or exact partial) is decoded + canonicalized.
#[allow(clippy::too_many_arguments)]
pub fn mine_closed_constrained_governed(
    db: &TransactionDatabase,
    minsupp: u32,
    miner: &dyn ClosedMiner,
    constraints: &ConstraintSet,
    budget: &Budget,
    item_order: ItemOrder,
    tx_order: TransactionOrder,
    push: bool,
) -> MineOutcome {
    constraints
        .validate()
        .expect("contradictory constraints reached the mining driver");
    let recoded =
        RecodedDatabase::prepare_excluding(db, minsupp, item_order, tx_order, &constraints.exclude);
    let dense = match constraints.encode(recoded.recode()) {
        Some(d) => d,
        None => return MineOutcome::complete(MiningResult::new()),
    };
    let outcome = if push && miner.supports_constraints() {
        miner.mine_constrained_governed(&recoded, minsupp.max(1), &dense, budget)
    } else {
        miner
            .mine_governed(&recoded, minsupp.max(1), budget)
            .map_result(|r| apply_constraints_owned(r, &dense))
    };
    outcome.map_result(|r| {
        let mut decoded = r.decode(recoded.recode());
        decoded.canonicalize();
        decoded
    })
}

/// Like [`mine_closed`], with explicit orders (for the §3.4 ablations).
pub fn mine_closed_with_orders(
    db: &TransactionDatabase,
    minsupp: u32,
    miner: &dyn ClosedMiner,
    item_order: ItemOrder,
    tx_order: TransactionOrder,
) -> MiningResult {
    let recoded = RecodedDatabase::prepare(db, minsupp, item_order, tx_order);
    let mut result = miner
        .mine(&recoded, minsupp.max(1))
        .decode(recoded.recode());
    result.canonicalize();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SingletonMiner;
    impl ClosedMiner for SingletonMiner {
        fn name(&self) -> &'static str {
            "singleton"
        }
        fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
            // toy miner: closed singletons only; correct only on databases
            // where every singleton happens to be closed
            (0..db.num_items())
                .filter(|&i| db.item_supports()[i as usize] >= minsupp)
                .filter(|&i| crate::closure::closure(db, &ItemSet::from([i])) == ItemSet::from([i]))
                .map(|i| FoundSet::new(ItemSet::from([i]), db.item_supports()[i as usize]))
                .collect()
        }
    }

    #[test]
    fn canonicalize_orders_by_len_then_items() {
        let mut r = MiningResult {
            sets: vec![
                FoundSet::new(ItemSet::from([2, 3]), 1),
                FoundSet::new(ItemSet::from([1]), 5),
                FoundSet::new(ItemSet::from([0, 5]), 2),
            ],
        };
        r.canonicalize();
        assert_eq!(r.sets[0].items, ItemSet::from([1]));
        assert_eq!(r.sets[1].items, ItemSet::from([0, 5]));
        assert_eq!(r.sets[2].items, ItemSet::from([2, 3]));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.max_set_len(), 2);
        assert_eq!(r.support_of(&ItemSet::from([1])), Some(5));
        assert_eq!(r.support_of(&ItemSet::from([9])), None);
    }

    #[test]
    fn mine_closed_decodes_to_raw_codes() {
        // raw items: "rare" appears once, "x" 3 times, "y" 2 times
        let db =
            TransactionDatabase::from_named(&[vec!["x", "rare"], vec!["x", "y"], vec!["x", "y"]]);
        let r = mine_closed(&db, 2, &SingletonMiner);
        // x is closed (cover = all three); y's closure is {x,y}, so the
        // toy miner reports only {x} — decoded to raw code of "x" = 0
        assert_eq!(r.support_of(&ItemSet::from([0])), Some(3));
    }

    #[test]
    fn decode_maps_codes() {
        let recode = Recode {
            item_to_new: vec![Some(1), None, Some(0)],
            item_to_old: vec![2, 0],
            tx_to_old: vec![0],
        };
        let r = MiningResult {
            sets: vec![FoundSet::new(ItemSet::from([0, 1]), 7)],
        };
        let d = r.decode(&recode);
        assert_eq!(d.sets[0].items, ItemSet::from([0, 2]));
        assert_eq!(d.sets[0].support, 7);
    }

    #[test]
    fn default_mine_governed_honours_expired_budget() {
        let db = TransactionDatabase::from_named(&[vec!["x", "y"], vec!["x"]]);
        let recoded =
            RecodedDatabase::prepare(&db, 1, ItemOrder::default(), TransactionOrder::default());
        let cancel = crate::CancelToken::new();
        cancel.cancel();
        let budget = crate::Budget::unlimited().with_cancel(cancel);
        let outcome = SingletonMiner.mine_governed(&recoded, 1, &budget);
        match outcome {
            crate::MineOutcome::Interrupted {
                partial,
                reason,
                progress,
            } => {
                assert!(partial.is_empty());
                assert_eq!(reason, crate::TripReason::Cancelled);
                assert_eq!(progress.total, Some(2));
            }
            other => panic!("expected interruption, got {other:?}"),
        }
        // an unlimited budget falls through to a plain complete mine
        let outcome = SingletonMiner.mine_governed(&recoded, 1, &crate::Budget::unlimited());
        assert!(!outcome.is_interrupted());
    }

    #[test]
    fn mine_closed_governed_decodes_and_canonicalizes() {
        let db =
            TransactionDatabase::from_named(&[vec!["x", "rare"], vec!["x", "y"], vec!["x", "y"]]);
        let outcome = mine_closed_governed(
            &db,
            2,
            &SingletonMiner,
            &crate::Budget::unlimited(),
            ItemOrder::default(),
            TransactionOrder::default(),
        );
        assert!(!outcome.is_interrupted());
        assert_eq!(outcome.result().support_of(&ItemSet::from([0])), Some(3));
    }

    #[test]
    fn debug_format() {
        let s = FoundSet::new(ItemSet::from([1, 2]), 4);
        assert_eq!(format!("{s:?}"), "{1 2}:4");
    }
}

//! Intersection-kernel representation selection.
//!
//! Every miner in this workspace spends its time intersecting sets — item
//! segments (IsTa), tid lists (Carpenter, eclat), or diffsets (dEclat). The
//! best physical representation of those sets depends on the database shape
//! (row count first, then fill rate), not on the algorithm:
//!
//! * **Scalar** — sorted `u32` vectors with linear merges and per-element
//!   probes. Best at moderate fill, and the bit-for-bit reference the other
//!   kernels must match.
//! * **Bitset** — [`WordSet`](crate::matrix::WordSet) packed bits, 64 per
//!   `u64` word, intersected by word-AND with fused popcount. A bitset row
//!   costs `rows/8` bytes against `4·ones/cols` for a list, so the break-even
//!   in space alone is `fill = 1/32`; the kernel also wins time once enough
//!   bits per word are live.
//! * **Gallop** — sorted vectors with exponential-search cursor advances.
//!   Wins when intersections pair a very short list with a very long one
//!   (`O(short · log long)` vs `O(short + long)`), which happens at very low
//!   fill with skewed supports.
//!
//! [`Representation::select`] makes the per-database choice from a
//! [`Density`] estimate; the thresholds are calibrated against E14 (see
//! EXPERIMENTS.md).

use crate::recode::Density;
use std::fmt;
use std::str::FromStr;

/// Physical set representation used by the intersection kernels.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Representation {
    /// Sorted `u32` vectors, linear merges (the reference kernels).
    #[default]
    Scalar,
    /// Packed `u64` bitsets, word-AND + popcount kernels.
    Bitset,
    /// Sorted `u32` vectors with exponential-search (galloping) advances.
    Gallop,
}

/// Row count at or above which bitset tid-sets pay off. A tid-set is
/// `rows` bits wide, so below this floor every set fits a handful of
/// words and the scalar cursors are already cache-resident — E14 measures
/// bitset *losing* slightly on the 30- and 249-transaction paper-axis
/// workloads while winning 2.7–5.7× on the 1 400- and 29 801-transaction
/// column-axis workloads, at every fill rate probed.
pub const BITSET_MIN_ROWS: usize = 256;

/// Fill rate at or above which the bitset representation is selected
/// (given enough rows). The word-AND streams `rows/64` words per
/// intersection against `~2·fill·rows` elements for the scalar merge, and
/// E14 measures the branchless word ops at roughly a third of the cost of
/// a branchy merge step, so break-even sits near `fill = 1/128·(1/3)`;
/// `1/256` keeps a margin above it. (The lowest fill E14 probes, 0.0086
/// on full-scale webview-basket, still has bitset 2.7× ahead.)
pub const BITSET_FILL_THRESHOLD: f64 = 1.0 / 256.0;

/// Alias kept for the galloping hand-off: below [`BITSET_FILL_THRESHOLD`]
/// (with many rows) the lists are so sparse that exponential-search
/// cursor skips beat both the word stream and the linear merge.
pub const GALLOP_FILL_THRESHOLD: f64 = BITSET_FILL_THRESHOLD;

impl Representation {
    /// Selects a representation from a database density estimate.
    ///
    /// Degenerate inputs (no rows, no columns, or no occurrences) always
    /// get `Scalar`: there is nothing to intersect, so the reference kernel
    /// is the only sensible default. With fewer than [`BITSET_MIN_ROWS`]
    /// rows every tid-set fits a few words and `Scalar` wins (or ties
    /// within noise) everywhere E14 measures, so it is kept. At or above
    /// the row floor, fill decides: `>= `[`BITSET_FILL_THRESHOLD`] →
    /// `Bitset`, else `Gallop` (lists that sparse reward exponential
    /// cursor skips over linear merges).
    pub fn select(d: &Density) -> Representation {
        if d.is_degenerate() || d.rows < BITSET_MIN_ROWS {
            Representation::Scalar
        } else if d.fill >= BITSET_FILL_THRESHOLD {
            Representation::Bitset
        } else {
            Representation::Gallop
        }
    }

    /// The stable lowercase name used in CLI flags and metrics JSON.
    pub fn name(self) -> &'static str {
        match self {
            Representation::Scalar => "scalar",
            Representation::Bitset => "bitset",
            Representation::Gallop => "gallop",
        }
    }
}

impl fmt::Display for Representation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Representation {
    type Err = String;

    /// Parses `scalar`, `bitset`, or `gallop`. The CLI's `auto` is not a
    /// representation — resolve it through [`Representation::select`]
    /// before reaching this parser.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Representation::Scalar),
            "bitset" => Ok(Representation::Bitset),
            "gallop" => Ok(Representation::Gallop),
            other => Err(format!(
                "unknown representation '{other}' (expected scalar, bitset, or gallop)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recode::RecodedDatabase;

    #[test]
    fn select_follows_rows_then_fill() {
        // many rows, dense: 300 rows × 4 cols, fill ~0.75 → bitset
        let dense = RecodedDatabase::from_dense(vec![vec![0, 1, 2]; 300], 4);
        assert_eq!(
            Representation::select(&dense.density()),
            Representation::Bitset
        );
        // many rows, ultra-sparse: 300 rows × 1000 cols, fill 0.001 → gallop
        let sparse = RecodedDatabase::from_dense((0..300).map(|k| vec![k % 1000]).collect(), 1000);
        assert!(sparse.density().fill < BITSET_FILL_THRESHOLD);
        assert_eq!(
            Representation::select(&sparse.density()),
            Representation::Gallop
        );
        // many rows, just above the fill floor → bitset
        let above = RecodedDatabase::from_dense(vec![vec![0]; 300], 100);
        assert!(above.density().fill >= BITSET_FILL_THRESHOLD);
        assert_eq!(
            Representation::select(&above.density()),
            Representation::Bitset
        );
        // few rows stay scalar regardless of fill: the tid-sets are a few
        // words wide and E14 measures bitset losing on exactly this shape
        let few_dense =
            RecodedDatabase::from_dense(vec![vec![0, 1, 2, 3], vec![0, 1, 2], vec![0, 1, 3]], 4);
        assert_eq!(
            Representation::select(&few_dense.density()),
            Representation::Scalar
        );
        let few_sparse =
            RecodedDatabase::from_dense(vec![vec![0], vec![500], vec![999], vec![0]], 1000);
        assert_eq!(
            Representation::select(&few_sparse.density()),
            Representation::Scalar
        );
    }

    #[test]
    fn degenerate_databases_select_scalar() {
        for db in [
            RecodedDatabase::from_dense(vec![], 10),      // no rows
            RecodedDatabase::from_dense(vec![], 0),       // nothing at all
            RecodedDatabase::from_dense(vec![vec![]], 3), // only empty txs
        ] {
            let d = db.density();
            assert!(d.is_degenerate());
            assert_eq!(Representation::select(&d), Representation::Scalar);
        }
    }

    #[test]
    fn names_parse_round_trip() {
        for rep in [
            Representation::Scalar,
            Representation::Bitset,
            Representation::Gallop,
        ] {
            assert_eq!(rep.name().parse::<Representation>().unwrap(), rep);
            assert_eq!(rep.to_string(), rep.name());
        }
        assert!("auto".parse::<Representation>().is_err());
        assert!("".parse::<Representation>().is_err());
        assert_eq!(Representation::default(), Representation::Scalar);
    }
}

//! Shared hot-path preprocessing: the §3.4 transaction order and weighted
//! transaction coalescing.
//!
//! The paper's ordering experiments (§3.4) show that processing transactions
//! smallest-first (ties broken lexicographically on a descending writing of
//! the items) dominates the runtime of the intersection approach. This
//! module owns that comparison — [`RecodedDatabase::prepare`] and the IsTa
//! merge replay both sort with it — plus the next step the order enables
//! for free: once equal transactions are adjacent, they can be **coalesced**
//! into `(items, weight)` pairs and processed by a single weighted
//! cumulative-intersection pass each.
//!
//! Coalescing is exact, not an approximation. For every item set `S` and a
//! transaction multiset `T` in which transaction `t` occurs `w_t` times,
//!
//! ```text
//! supp_T(S) = Σ_{distinct t ⊇ S} w_t
//! ```
//!
//! so replaying each distinct transaction once with every support increment
//! multiplied by its weight yields exactly the supports of the duplicated
//! input (`PrefixTree::add_transaction_weighted` implements the weighted
//! increment). On dense data — where recoding against a high minimum support
//! strips most items and collapses many rows onto each other — each
//! duplicate then costs one support bump instead of a full `isect`
//! traversal.
//!
//! [`RecodedDatabase::prepare`]: crate::RecodedDatabase::prepare

use crate::Item;
use std::cmp::Ordering;

/// Compare two transactions by size first, then lexicographically on the
/// items written in descending order (the paper's §3.4 tie-break).
///
/// This is the canonical processing order of the workspace: recoding sorts
/// with it when [`TransactionOrder::AscendingSize`] is requested, the IsTa
/// merge replay sorts a tree's stored transactions with it, and
/// [`coalesce`] relies on it to make equal transactions adjacent.
///
/// [`TransactionOrder::AscendingSize`]: crate::order::TransactionOrder::AscendingSize
pub fn cmp_size_then_desc_lex(a: &[Item], b: &[Item]) -> Ordering {
    a.len().cmp(&b.len()).then_with(|| {
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        Ordering::Equal
    })
}

/// Coalesces a transaction list into deduplicated `(items, weight)` pairs,
/// returned in **first-occurrence order** of the input.
///
/// Duplicates are found by sorting an index array with
/// [`cmp_size_then_desc_lex`] (making equal rows adjacent), but the
/// distinct rows come back in the order the caller provided them: the
/// caller has usually already applied the §3.4 processing order, and a
/// fully duplicate-free list must round-trip unchanged — coalescing is
/// output-invariant, so it must not second-guess the processing order
/// either.
///
/// The input slices are borrowed, not cloned; empty transactions are kept
/// (with their multiplicity) so callers that track processed weight can
/// account for them. The sum of all weights equals `txs.len()`.
pub fn coalesce<T: AsRef<[Item]>>(txs: &[T]) -> Vec<(&[Item], u32)> {
    let mut idx: Vec<usize> = (0..txs.len()).collect();
    idx.sort_unstable_by(|&a, &b| {
        cmp_size_then_desc_lex(txs[a].as_ref(), txs[b].as_ref()).then(a.cmp(&b))
    });
    // (first-occurrence index, weight) per distinct row; the index
    // tie-break above guarantees the group leader is the earliest copy
    let mut groups: Vec<(usize, u32)> = Vec::new();
    for &i in &idx {
        match groups.last_mut() {
            Some((rep, w)) if txs[*rep].as_ref() == txs[i].as_ref() => *w += 1,
            _ => groups.push((i, 1)),
        }
    }
    groups.sort_unstable_by_key(|&(rep, _)| rep);
    groups
        .into_iter()
        .map(|(rep, w)| (txs[rep].as_ref(), w))
        .collect()
}

/// Occurrence count of every item in a weighted transaction list: each
/// transaction contributes its weight to each of its items. `num_items`
/// sizes the result (index = item code).
pub fn weighted_item_counts(txs: &[(&[Item], u32)], num_items: u32) -> Vec<u32> {
    let mut counts = vec![0u32; num_items as usize];
    for (t, w) in txs {
        for &i in t.iter() {
            counts[i as usize] += w;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_lex_tie_break() {
        assert_eq!(cmp_size_then_desc_lex(&[1, 5], &[2, 5]), Ordering::Less);
        assert_eq!(cmp_size_then_desc_lex(&[2, 5], &[1, 5]), Ordering::Greater);
        assert_eq!(cmp_size_then_desc_lex(&[1, 2], &[1, 2, 3]), Ordering::Less);
        assert_eq!(cmp_size_then_desc_lex(&[3, 4], &[3, 4]), Ordering::Equal);
        assert_eq!(cmp_size_then_desc_lex(&[], &[0]), Ordering::Less);
    }

    #[test]
    fn coalesce_merges_duplicates_in_first_occurrence_order() {
        let txs: Vec<Vec<Item>> = vec![
            vec![0, 1, 2],
            vec![3],
            vec![0, 1, 2],
            vec![1, 4],
            vec![0, 1, 2],
            vec![3],
        ];
        let got = coalesce(&txs);
        assert_eq!(
            got,
            vec![(&[0, 1, 2][..], 3), (&[3][..], 2), (&[1, 4][..], 1)]
        );
        assert_eq!(got.iter().map(|(_, w)| w).sum::<u32>(), txs.len() as u32);
    }

    #[test]
    fn coalesce_of_distinct_rows_round_trips_order() {
        // no duplicates → the exact input list back, all weights 1
        let txs: Vec<Vec<Item>> = vec![vec![2, 3], vec![0], vec![1, 2, 4], vec![0, 1]];
        let got = coalesce(&txs);
        let want: Vec<(&[Item], u32)> = txs.iter().map(|t| (t.as_slice(), 1)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn coalesce_keeps_empty_transactions() {
        let txs: Vec<Vec<Item>> = vec![vec![], vec![0], vec![]];
        let got = coalesce(&txs);
        assert_eq!(got, vec![(&[][..], 2), (&[0][..], 1)]);
    }

    #[test]
    fn coalesce_of_distinct_is_identity_multiset() {
        let txs: Vec<Vec<Item>> = vec![vec![0], vec![1], vec![0, 1]];
        let got = coalesce(&txs);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(_, w)| w == 1));
    }

    #[test]
    fn coalesce_empty_input() {
        let txs: Vec<Vec<Item>> = vec![];
        assert!(coalesce(&txs).is_empty());
    }

    #[test]
    fn weighted_counts_match_flat_scan() {
        let txs: Vec<Vec<Item>> = vec![vec![0, 2], vec![0, 2], vec![1, 2], vec![0, 2]];
        let coalesced = coalesce(&txs);
        let counts = weighted_item_counts(&coalesced, 3);
        assert_eq!(counts, vec![3, 1, 4]);
    }
}

//! Item-code and transaction-processing orders (paper §3.4).
//!
//! The paper reports that for the intersection approach it is usually most
//! efficient to assign item codes by *ascending* frequency (the rarest item
//! gets code 0) and to process transactions in order of *increasing* size,
//! breaking size ties lexicographically w.r.t. a descending writing of the
//! items. Both orders affect only the running time, never the mined output;
//! this invariant is exercised by the ablation tests and benchmarked by the
//! `orders` experiment runner (E8).

/// How item codes are assigned during recoding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ItemOrder {
    /// Rarest item gets code 0 (paper default, usually fastest).
    #[default]
    AscendingFrequency,
    /// Most frequent item gets code 0.
    DescendingFrequency,
    /// Keep the raw catalog codes (compacted over surviving items).
    Original,
}

/// The order in which transactions are processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TransactionOrder {
    /// Smallest transactions first (paper default, usually fastest);
    /// ties broken lexicographically on descending item codes.
    #[default]
    AscendingSize,
    /// Largest transactions first (the paper's slow counter-example).
    DescendingSize,
    /// Keep the input order.
    Original,
}

impl ItemOrder {
    /// All variants, for ablation sweeps.
    pub const ALL: [ItemOrder; 3] = [
        ItemOrder::AscendingFrequency,
        ItemOrder::DescendingFrequency,
        ItemOrder::Original,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ItemOrder::AscendingFrequency => "item:asc-freq",
            ItemOrder::DescendingFrequency => "item:desc-freq",
            ItemOrder::Original => "item:original",
        }
    }
}

impl TransactionOrder {
    /// All variants, for ablation sweeps.
    pub const ALL: [TransactionOrder; 3] = [
        TransactionOrder::AscendingSize,
        TransactionOrder::DescendingSize,
        TransactionOrder::Original,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            TransactionOrder::AscendingSize => "tx:asc-size",
            TransactionOrder::DescendingSize => "tx:desc-size",
            TransactionOrder::Original => "tx:original",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(ItemOrder::default(), ItemOrder::AscendingFrequency);
        assert_eq!(TransactionOrder::default(), TransactionOrder::AscendingSize);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ItemOrder::ALL.iter().map(|o| o.label()).collect();
        labels.extend(TransactionOrder::ALL.iter().map(|o| o.label()));
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}

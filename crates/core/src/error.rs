//! Error type shared across the workspace.

use std::fmt;

/// Errors raised by database construction, parsing, and mining entry points.
#[derive(Debug)]
pub enum FimError {
    /// An I/O error while reading or writing a data file.
    Io(std::io::Error),
    /// A parse error in an input file, with 1-based line number and message.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Invalid parameters or inconsistent inputs supplied by the caller.
    InvalidInput(String),
}

impl fmt::Display for FimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FimError::Io(e) => write!(f, "i/o error: {e}"),
            FimError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FimError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for FimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FimError {
    fn from(e: std::io::Error) -> Self {
        FimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = FimError::Parse {
            line: 3,
            message: "bad item".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad item");
        let e = FimError::InvalidInput("minsupp must be positive".into());
        assert!(e.to_string().contains("minsupp"));
        let e = FimError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = FimError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
        let e = FimError::InvalidInput("x".into());
        assert!(e.source().is_none());
    }
}

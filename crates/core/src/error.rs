//! Error type shared across the workspace.

use std::fmt;

use crate::govern::TripReason;

/// Errors raised by database construction, parsing, and mining entry points.
#[derive(Debug)]
pub enum FimError {
    /// An I/O error while reading or writing a data file.
    Io(std::io::Error),
    /// A parse error in an input file, with 1-based line number and message.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Invalid parameters or inconsistent inputs supplied by the caller.
    InvalidInput(String),
    /// A governed mining run tripped its [`Budget`](crate::Budget) — used
    /// by entry points that cannot return a partial
    /// [`MineOutcome`](crate::MineOutcome) and must surface the trip as an
    /// error instead.
    Interrupted(TripReason),
    /// A persisted artifact (checkpoint snapshot) failed validation:
    /// unknown magic, unsupported version, CRC mismatch, or inconsistent
    /// structure.
    Corrupt(String),
}

impl fmt::Display for FimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FimError::Io(e) => write!(f, "i/o error: {e}"),
            FimError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            FimError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            FimError::Interrupted(reason) => write!(f, "interrupted: {reason}"),
            FimError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for FimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FimError::Io(e) => Some(e),
            FimError::Parse { .. }
            | FimError::InvalidInput(_)
            | FimError::Interrupted(_)
            | FimError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for FimError {
    fn from(e: std::io::Error) -> Self {
        FimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = FimError::Parse {
            line: 3,
            message: "bad item".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad item");
        let e = FimError::InvalidInput("minsupp must be positive".into());
        assert!(e.to_string().contains("minsupp"));
        let e = FimError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = FimError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
        let e = FimError::InvalidInput("x".into());
        assert!(e.source().is_none());
    }

    #[test]
    fn interrupted_and_corrupt_display() {
        let e = FimError::Interrupted(TripReason::Timeout);
        assert_eq!(e.to_string(), "interrupted: timeout");
        let e = FimError::Interrupted(TripReason::NodeBudget);
        assert_eq!(e.to_string(), "interrupted: node budget");
        let e = FimError::Corrupt("crc mismatch".into());
        assert_eq!(e.to_string(), "corrupt snapshot: crc mismatch");
    }

    #[test]
    fn source_covers_every_variant() {
        use std::error::Error;
        let variants = [
            FimError::Parse {
                line: 1,
                message: "x".into(),
            },
            FimError::InvalidInput("x".into()),
            FimError::Interrupted(TripReason::Cancelled),
            FimError::Corrupt("x".into()),
        ];
        for v in variants {
            assert!(v.source().is_none(), "{v}");
        }
        assert!(FimError::from(std::io::Error::other("io"))
            .source()
            .is_some());
    }
}

//! Canonical item sets: sorted, duplicate-free vectors of item codes.

use crate::Item;
use std::fmt;

/// A set of items, stored as a strictly ascending vector of item codes.
///
/// This is the canonical representation used for transactions, mined closed
/// sets, and all intermediate intersections. The ascending-order invariant
/// makes intersection, subset testing, and comparison linear-time merges.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ItemSet {
    items: Vec<Item>,
}

impl ItemSet {
    /// Creates the empty item set.
    pub fn empty() -> Self {
        ItemSet { items: Vec::new() }
    }

    /// Creates an item set from arbitrary (possibly unsorted, possibly
    /// duplicated) item codes.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        ItemSet { items }
    }

    /// Creates an item set from a vector that is already strictly ascending.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the invariant does not hold.
    pub fn from_sorted(items: Vec<Item>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending items"
        );
        ItemSet { items }
    }

    /// Number of items in the set.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items in strictly ascending order.
    pub fn as_slice(&self) -> &[Item] {
        &self.items
    }

    /// Iterates over the items in ascending order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Item> + '_ {
        self.items.iter().copied()
    }

    /// The largest item code, if any.
    pub fn max_item(&self) -> Option<Item> {
        self.items.last().copied()
    }

    /// The smallest item code, if any.
    pub fn min_item(&self) -> Option<Item> {
        self.items.first().copied()
    }

    /// Membership test (binary search).
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether `self` is a subset of `other` (linear merge).
    pub fn is_subset_of(&self, other: &ItemSet) -> bool {
        is_subset(&self.items, &other.items)
    }

    /// The intersection of two item sets (linear merge).
    pub fn intersect(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        intersect_into(&self.items, &other.items, &mut out);
        ItemSet { items: out }
    }

    /// The union of two item sets (linear merge).
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (a, b) = (&self.items, &other.items);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        ItemSet { items: out }
    }

    /// The set difference `self \ other` (linear merge).
    pub fn minus(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.len());
        let (a, b) = (&self.items, &other.items);
        let (mut i, mut j) = (0, 0);
        while i < a.len() {
            if j == b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] == b[j] {
                i += 1;
                j += 1;
            } else {
                j += 1;
            }
        }
        ItemSet { items: out }
    }

    /// Inserts an item, keeping the set sorted. Returns `true` if inserted.
    pub fn insert(&mut self, item: Item) -> bool {
        match self.items.binary_search(&item) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, item);
                true
            }
        }
    }

    /// Consumes the set, returning the ascending item vector.
    pub fn into_vec(self) -> Vec<Item> {
        self.items
    }
}

/// Subset test on two strictly ascending slices.
pub fn is_subset(a: &[Item], b: &[Item]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        // advance j until b[j] >= x
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j == b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

/// Intersects two strictly ascending slices into `out` (cleared first).
pub fn intersect_into(a: &[Item], b: &[Item], out: &mut Vec<Item>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// First index `>= start` in strictly ascending `list` whose value is
/// `>= target`, found by exponential (galloping) search followed by a
/// binary search over the bracketed range. Returns the index and the
/// number of probes spent (for kernel accounting). `O(log d)` in the
/// distance `d` advanced, against `O(d)` for a linear cursor.
#[inline]
pub fn gallop_advance(list: &[Item], start: usize, target: Item) -> (usize, u64) {
    if start >= list.len() || list[start] >= target {
        return (start, 1);
    }
    // Double the offset until it overshoots; invariant after the loop:
    // list[start + hi/2] < target (probed, or start itself) and
    // list[start + hi] >= target when in range.
    let mut probes = 1u64;
    let mut hi = 1usize;
    while start + hi < list.len() && list[start + hi] < target {
        probes += 1;
        hi *= 2;
    }
    let lo_b = start + hi / 2;
    let hi_b = (start + hi).min(list.len());
    let within = list[lo_b..hi_b].partition_point(|&x| x < target);
    probes += (hi_b - lo_b).max(1).ilog2() as u64 + 1;
    (lo_b + within, probes)
}

/// Intersects two strictly ascending slices into `out` (cleared first) by
/// galloping through the longer slice for each element of the shorter one.
/// Output is identical to [`intersect_into`]; returns the probe count.
/// Wins when the lengths are badly skewed (`long/short ≳ 8`), loses to the
/// linear merge when they are comparable — callers choose adaptively.
pub fn gallop_intersect_into(a: &[Item], b: &[Item], out: &mut Vec<Item>) -> u64 {
    out.clear();
    // walk the shorter slice, gallop in the longer
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut probes = 0u64;
    let mut j = 0usize;
    for &x in short {
        let (nj, p) = gallop_advance(long, j, x);
        probes += p;
        j = nj;
        if j == long.len() {
            break;
        }
        if long[j] == x {
            out.push(x);
            j += 1;
        }
    }
    probes
}

impl From<Vec<Item>> for ItemSet {
    fn from(v: Vec<Item>) -> Self {
        ItemSet::new(v)
    }
}

impl From<&[Item]> for ItemSet {
    fn from(v: &[Item]) -> Self {
        ItemSet::new(v.to_vec())
    }
}

impl<const N: usize> From<[Item; N]> for ItemSet {
    fn from(v: [Item; N]) -> Self {
        ItemSet::new(v.to_vec())
    }
}

impl FromIterator<Item> for ItemSet {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        ItemSet::new(iter.into_iter().collect())
    }
}

fn fmt_items(items: &[Item], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{{")?;
    for (k, it) in items.iter().enumerate() {
        if k > 0 {
            write!(f, " ")?;
        }
        write!(f, "{it}")?;
    }
    write!(f, "}}")
}

impl fmt::Debug for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_items(&self.items, f)
    }
}

impl fmt::Display for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_items(&self.items, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = ItemSet::new(vec![3, 1, 2, 3, 1]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_set_properties() {
        let e = ItemSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.max_item(), None);
        assert_eq!(e.min_item(), None);
        assert!(e.is_subset_of(&ItemSet::from([1, 2])));
        assert_eq!(e.intersect(&ItemSet::from([1, 2])), ItemSet::empty());
    }

    #[test]
    fn intersect_basic() {
        let a = ItemSet::from([1, 3, 5, 7]);
        let b = ItemSet::from([2, 3, 5, 8]);
        assert_eq!(a.intersect(&b), ItemSet::from([3, 5]));
        assert_eq!(b.intersect(&a), ItemSet::from([3, 5]));
        assert_eq!(a.intersect(&a), a);
    }

    #[test]
    fn union_and_minus() {
        let a = ItemSet::from([1, 3, 5]);
        let b = ItemSet::from([3, 4]);
        assert_eq!(a.union(&b), ItemSet::from([1, 3, 4, 5]));
        assert_eq!(a.minus(&b), ItemSet::from([1, 5]));
        assert_eq!(b.minus(&a), ItemSet::from([4]));
        assert_eq!(a.minus(&a), ItemSet::empty());
    }

    #[test]
    fn subset_tests() {
        let a = ItemSet::from([2, 4]);
        let b = ItemSet::from([1, 2, 3, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(!ItemSet::from([2, 5]).is_subset_of(&b));
    }

    #[test]
    fn contains_and_bounds() {
        let a = ItemSet::from([10, 20, 30]);
        assert!(a.contains(20));
        assert!(!a.contains(15));
        assert_eq!(a.min_item(), Some(10));
        assert_eq!(a.max_item(), Some(30));
    }

    #[test]
    fn insert_keeps_order() {
        let mut a = ItemSet::from([1, 5]);
        assert!(a.insert(3));
        assert!(!a.insert(3));
        assert_eq!(a.as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn display_format() {
        assert_eq!(ItemSet::from([1, 2, 3]).to_string(), "{1 2 3}");
        assert_eq!(ItemSet::empty().to_string(), "{}");
    }

    #[test]
    fn from_iterator() {
        let s: ItemSet = [5u32, 1, 5, 2].into_iter().collect();
        assert_eq!(s.as_slice(), &[1, 2, 5]);
    }

    #[test]
    fn gallop_advance_finds_lower_bound() {
        let list: Vec<Item> = (0..100).map(|x| x * 3).collect();
        for start in [0usize, 1, 17, 50, 99, 100] {
            for target in [0u32, 1, 3, 148, 149, 150, 296, 297, 298, 500] {
                let (idx, probes) = gallop_advance(&list, start, target);
                let want = start.max(list.partition_point(|&x| x < target));
                assert_eq!(idx, want, "start={start} target={target}");
                assert!(probes >= 1);
            }
        }
        assert_eq!(gallop_advance(&[], 0, 5), (0, 1));
    }

    #[test]
    fn gallop_intersect_matches_linear() {
        let cases: Vec<(Vec<Item>, Vec<Item>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![5], (0..1000).collect()),
            (vec![999], (0..1000).collect()),
            (vec![1000], (0..1000).collect()),
            ((0..50).map(|x| x * 7).collect(), (0..300).collect()),
            ((0..300).collect(), (0..50).map(|x| x * 7).collect()),
            (vec![1, 2, 3], vec![1, 2, 3]),
            (vec![0, 63, 64, 127, 128], vec![63, 64, 65, 128]),
        ];
        for (a, b) in cases {
            let mut lin = Vec::new();
            let mut gal = vec![42]; // must be cleared
            intersect_into(&a, &b, &mut lin);
            let probes = gallop_intersect_into(&a, &b, &mut gal);
            assert_eq!(lin, gal, "a={a:?} b={b:?}");
            assert!(probes > 0 || a.is_empty() || b.is_empty());
        }
    }

    #[test]
    fn raw_helpers_match_methods() {
        let a = [1u32, 4, 6];
        let b = [1u32, 2, 4, 9];
        assert!(is_subset(&[1, 4], &a));
        assert!(!is_subset(&a, &b));
        let mut out = vec![99];
        intersect_into(&a, &b, &mut out);
        assert_eq!(out, vec![1, 4]);
    }
}

//! Item name interning.

use crate::Item;
use std::collections::HashMap;

/// Bidirectional mapping between external item names and dense item codes.
///
/// The item base of a [`TransactionDatabase`](crate::TransactionDatabase) is
/// usually given implicitly as the union of all transactions (paper §2.1);
/// the catalog assigns each distinct name the next free code in order of
/// first appearance.
#[derive(Clone, Debug, Default)]
pub struct ItemCatalog {
    names: Vec<String>,
    codes: HashMap<String, Item>,
}

impl ItemCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog of `n` anonymous items named `"0"`, `"1"`, ….
    ///
    /// Useful for databases constructed from raw code vectors.
    pub fn anonymous(n: usize) -> Self {
        let mut c = Self::new();
        for k in 0..n {
            c.intern(&k.to_string());
        }
        c
    }

    /// Returns the code for `name`, interning it if it is new.
    pub fn intern(&mut self, name: &str) -> Item {
        if let Some(&code) = self.codes.get(name) {
            return code;
        }
        let code = self.names.len() as Item;
        self.names.push(name.to_owned());
        self.codes.insert(name.to_owned(), code);
        code
    }

    /// Looks up the code of an already-interned name.
    pub fn code(&self, name: &str) -> Option<Item> {
        self.codes.get(name).copied()
    }

    /// Looks up the name of a code.
    pub fn name(&self, code: Item) -> Option<&str> {
        self.names.get(code as usize).map(String::as_str)
    }

    /// Number of interned items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(code, name)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (Item, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(k, n)| (k as Item, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_sequential_codes() {
        let mut c = ItemCatalog::new();
        assert_eq!(c.intern("a"), 0);
        assert_eq!(c.intern("b"), 1);
        assert_eq!(c.intern("a"), 0);
        assert_eq!(c.len(), 2);
        assert_eq!(c.name(1), Some("b"));
        assert_eq!(c.code("b"), Some(1));
        assert_eq!(c.code("zz"), None);
        assert_eq!(c.name(7), None);
    }

    #[test]
    fn anonymous_catalog() {
        let c = ItemCatalog::anonymous(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.name(2), Some("2"));
        assert_eq!(c.code("0"), Some(0));
        assert!(!c.is_empty());
        assert!(ItemCatalog::new().is_empty());
    }

    #[test]
    fn iter_yields_code_order() {
        let mut c = ItemCatalog::new();
        c.intern("x");
        c.intern("y");
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }
}

//! # fim-core
//!
//! Core substrate for closed frequent item set mining, shared by every
//! algorithm crate in this workspace (the IsTa cumulative-intersection miner,
//! the Carpenter transaction-set-enumeration miners, and the item-set
//! enumeration baselines).
//!
//! The crate provides:
//!
//! * [`ItemSet`] — a canonical (sorted, duplicate-free) set of item codes with
//!   the set algebra every miner needs (intersection, subset tests, …),
//! * [`TransactionDatabase`] — a raw transaction database over named items,
//! * [`RecodedDatabase`] — the mining-ready form: infrequent items removed,
//!   item codes reassigned according to an [`ItemOrder`], transactions
//!   reordered according to a [`TransactionOrder`] (paper §3.4),
//! * [`TidLists`] — the vertical representation (per-item transaction-index
//!   lists) used by the list-based Carpenter variant,
//! * [`BitMatrix`] and [`SuffixCountMatrix`] — the table representation of
//!   the improved Carpenter variant (paper Table 1),
//! * the [`cover`]/[`support`]/[`closure`] primitives and the Galois
//!   connection (paper §2.4–2.5) in [`galois`],
//! * the [`ClosedMiner`] trait with [`MiningResult`]/[`FoundSet`] result
//!   types so that all algorithms are interchangeable and comparable,
//! * the [`govern`] resource-governance layer: [`Budget`]s (wall-clock
//!   deadline, node/byte caps, cancellation), the [`checkpoint!`] hot-loop
//!   macro, and structured [`MineOutcome`]s with exact partial results,
//! * a brute-force [`reference`] miner used as ground truth in tests.
//!
//! Item codes inside a [`RecodedDatabase`] are dense `u32` values
//! `0..num_items`; transaction indices ("tids") are dense `u32` values
//! `0..num_transactions`. All tree structures in the algorithm crates are
//! index-based arenas, so the whole workspace is `unsafe`-free.
//!
//! [`cover`]: cover::cover
//! [`support`]: cover::support
//! [`closure`]: closure::closure

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod closure;
pub mod constraint;
pub mod cover;
pub mod database;
pub mod error;
pub mod fault;
pub mod galois;
pub mod govern;
pub mod itemset;
pub mod matrix;
pub mod maximal;
pub mod miner;
pub mod order;
pub mod prepare;
pub mod recode;
pub mod reference;
pub mod rep;

pub use catalog::ItemCatalog;
pub use closure::{closure, closure_with, is_closed, is_closed_with};
pub use constraint::{apply_constraints, apply_constraints_owned, ConstraintSet};
pub use cover::{cover, support, BitCover, TidLists};
pub use database::TransactionDatabase;
pub use error::FimError;
pub use govern::{Budget, CancelToken, Degradation, Governor, MineOutcome, Progress, TripReason};
pub use itemset::{gallop_advance, gallop_intersect_into, ItemSet};
pub use matrix::{BitMatrix, BitsetRow, SuffixCountMatrix, WordSet};
pub use maximal::maximal_from_closed;
pub use miner::{
    mine_closed, mine_closed_constrained, mine_closed_constrained_governed, mine_closed_governed,
    mine_closed_relative, mine_closed_with_orders, ClosedMiner, FoundSet, MiningResult,
};
pub use order::{ItemOrder, TransactionOrder};
pub use prepare::{cmp_size_then_desc_lex, coalesce};
pub use recode::{Density, Recode, RecodedDatabase, StreamingRecode};
pub use rep::Representation;

/// Dense item code used throughout the workspace.
pub type Item = u32;

/// Dense transaction index ("tid") used throughout the workspace.
pub type Tid = u32;

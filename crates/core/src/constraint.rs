//! User constraints on mined closed sets, pushed into the search loops.
//!
//! A [`ConstraintSet`] bundles the constraint kinds the CLI exposes:
//! must-include items, must-exclude items, minimum/maximum itemset size,
//! and minimum *area* (support × size). Each kind has a known class for
//! closed-set mining (the global-constraints catalog, arXiv 1604.04894):
//!
//! | constraint   | class            | sound push for closed sets          |
//! |--------------|------------------|-------------------------------------|
//! | must-exclude | anti-monotone    | database projection: drop the item  |
//! |              |                  | at recode time ([`RecodedDatabase::prepare_excluding`]) |
//! | max-size     | anti-monotone    | cut enumeration below the bound —   |
//! |              |                  | but **only** where closedness is    |
//! |              |                  | decided independently per node      |
//! | must-include | monotone         | cut subtrees that can no longer     |
//! |              |                  | reach the required items            |
//! | min-size     | monotone         | cut states smaller than the bound   |
//! |              |                  | (Carpenter states shrink with depth)|
//! | min-area     | convertible      | raised support floor `⌈A/size_cap⌉` |
//! |              |                  | + per-branch upper-bound cuts       |
//!
//! **Exclusion semantics.** Excluding an item is defined as *projecting the
//! database* (removing the item from every transaction), not as discarding
//! mined sets that contain it. The two differ: removing an item changes the
//! closure operator, so closed sets of the projected database need not be
//! closed sets of the full database (e.g. two copies of `{a,b}` at
//! `minsupp 1`: the full database has only `{a,b}:2`, the `b`-projected
//! database has `{a}:2`). Projection is what a user filtering out an item
//! wants, and it is the only semantics every miner can push soundly, so
//! both the pushed path and the [`apply_constraints`] oracle operate on the
//! same projected database.
//!
//! The exactness contract, enforced by `tests/constraint_proptest.rs`:
//! for every miner, pushed constrained mining equals
//! [`apply_constraints`] applied to an unconstrained mine of the same
//! (projected) database.

use crate::{
    itemset::ItemSet,
    miner::{FoundSet, MiningResult},
    recode::Recode,
    Item,
};
use std::fmt;

/// The area of a mined set: support × size, the convertible quality
/// measure the `--min-area` constraint bounds from below.
#[inline]
pub fn area(support: u32, len: usize) -> u64 {
    support as u64 * len as u64
}

/// A bundle of user constraints over mined closed sets.
///
/// The default value is unconstrained: every mined set satisfies it and
/// the constrained drivers reduce to the plain ones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    /// Items every reported set must contain (monotone).
    pub include: ItemSet,
    /// Items no reported set may contain (anti-monotone; pushed as a
    /// database projection at recode time).
    pub exclude: ItemSet,
    /// Minimum number of items per reported set (monotone). 0 = no bound.
    pub min_size: u32,
    /// Maximum number of items per reported set (anti-monotone).
    pub max_size: Option<u32>,
    /// Minimum area (support × size) per reported set (convertible).
    /// 0 = no bound.
    pub min_area: u64,
}

impl ConstraintSet {
    /// The unconstrained set (alias for `Default::default()`).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether no constraint is active.
    pub fn is_unconstrained(&self) -> bool {
        self.include.is_empty()
            && self.exclude.is_empty()
            && self.min_size == 0
            && self.max_size.is_none()
            && self.min_area == 0
    }

    /// Checks the bundle for internal contradictions that indicate a usage
    /// error (the CLI maps these to exit code 2): a minimum size above the
    /// maximum size, or an item that is both required and excluded.
    /// Constraints that are merely unsatisfiable on a given database (an
    /// include item that is infrequent, `--max-size 0`) are *not* errors —
    /// they yield an empty result.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(max) = self.max_size {
            if self.min_size > max {
                return Err(format!(
                    "contradictory size bounds: --min-size {} > --max-size {max}",
                    self.min_size
                ));
            }
            if (self.include.len() as u32) > max {
                return Err(format!(
                    "contradictory constraints: {} --include items exceed --max-size {max}",
                    self.include.len()
                ));
            }
        }
        let both = self.include.intersect(&self.exclude);
        if !both.is_empty() {
            return Err(format!(
                "contradictory constraints: items {both} are both included and excluded"
            ));
        }
        Ok(())
    }

    /// Whether a mined set with the given support satisfies every
    /// constraint. This is the single predicate definition shared by the
    /// pushed miners (final emission gate) and [`apply_constraints`].
    pub fn satisfied_by(&self, items: &ItemSet, support: u32) -> bool {
        let n = items.len() as u32;
        if n < self.min_size {
            return false;
        }
        if let Some(max) = self.max_size {
            if n > max {
                return false;
            }
        }
        if area(support, items.len()) < self.min_area {
            return false;
        }
        if !self.include.is_subset_of(items) {
            return false;
        }
        // After projection the exclude test is vacuous, but the predicate
        // stays complete so it is also correct standalone.
        if !self.exclude.is_empty() && !items.intersect(&self.exclude).is_empty() {
            return false;
        }
        true
    }

    /// The effective support floor the min-area constraint induces.
    ///
    /// Every satisfying set has `support ≥ area / size ≥ min_area /
    /// size_cap` where `size_cap = min(max_size, num_items)`, so mining at
    /// `max(minsupp, ⌈min_area / size_cap⌉)` loses no satisfying set. Sets
    /// with support between `minsupp` and the floor all fail the area
    /// constraint, which is how the IsTa prune passes push min-area without
    /// touching tree structure. Returns `u32::MAX` when nothing can satisfy
    /// the bounds (`size_cap == 0` with a positive area bound).
    pub fn support_floor(&self, num_items: u32, minsupp: u32) -> u32 {
        if self.min_area == 0 {
            return minsupp;
        }
        let cap = self.max_size.unwrap_or(num_items).min(num_items) as u64;
        if cap == 0 {
            return u32::MAX;
        }
        let floor = self.min_area.div_ceil(cap);
        minsupp.max(floor.min(u32::MAX as u64) as u32)
    }

    /// Translates the include items from raw catalog codes to the dense
    /// codes of a recoded database. The exclude items are dropped: after
    /// [`RecodedDatabase::prepare_excluding`] they no longer exist as
    /// dense codes.
    ///
    /// Returns `None` when an include item did not survive recoding
    /// (infrequent, unknown, or itself excluded) — no frequent set can
    /// contain it, so the constrained result is empty.
    ///
    /// [`RecodedDatabase::prepare_excluding`]: crate::recode::RecodedDatabase::prepare_excluding
    pub fn encode(&self, recode: &Recode) -> Option<ConstraintSet> {
        let include = recode.encode_items(&self.include)?;
        Some(ConstraintSet {
            include,
            exclude: ItemSet::empty(),
            min_size: self.min_size,
            max_size: self.max_size,
            min_area: self.min_area,
        })
    }
}

impl fmt::Display for ConstraintSet {
    /// A compact spec string for reports: `include={..} exclude={..}
    /// min_size=N max_size=N min_area=N`, active parts only; `none` when
    /// unconstrained.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unconstrained() {
            return write!(f, "none");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            Ok(())
        };
        if !self.include.is_empty() {
            sep(f)?;
            write!(f, "include={}", self.include)?;
        }
        if !self.exclude.is_empty() {
            sep(f)?;
            write!(f, "exclude={}", self.exclude)?;
        }
        if self.min_size > 0 {
            sep(f)?;
            write!(f, "min_size={}", self.min_size)?;
        }
        if let Some(max) = self.max_size {
            sep(f)?;
            write!(f, "max_size={max}")?;
        }
        if self.min_area > 0 {
            sep(f)?;
            write!(f, "min_area={}", self.min_area)?;
        }
        Ok(())
    }
}

/// Post-filters a mining result through a constraint set: keeps exactly
/// the sets [`ConstraintSet::satisfied_by`] accepts.
///
/// This is the oracle half of the exactness contract and the `--no-push`
/// escape hatch. Note the exclusion caveat at the module level: the input
/// must already come from the *projected* database for the result to match
/// pushed mining when `exclude` is non-empty.
pub fn apply_constraints(result: &MiningResult, constraints: &ConstraintSet) -> MiningResult {
    MiningResult {
        sets: result
            .sets
            .iter()
            .filter(|s| constraints.satisfied_by(&s.items, s.support))
            .cloned()
            .collect(),
    }
}

/// Like [`apply_constraints`], taking ownership (used on decoded results).
pub fn apply_constraints_owned(result: MiningResult, constraints: &ConstraintSet) -> MiningResult {
    MiningResult {
        sets: result
            .sets
            .into_iter()
            .filter(|s| constraints.satisfied_by(&s.items, s.support))
            .collect(),
    }
}

/// Convenience constructor for tests and benches.
pub fn found(items: &[Item], support: u32) -> FoundSet {
    FoundSet::new(ItemSet::from(items), support)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unconstrained_and_accepts_everything() {
        let cs = ConstraintSet::none();
        assert!(cs.is_unconstrained());
        cs.validate().unwrap();
        assert!(cs.satisfied_by(&ItemSet::from([0]), 1));
        assert!(cs.satisfied_by(&ItemSet::empty(), 0));
        assert_eq!(cs.support_floor(10, 3), 3);
        assert_eq!(cs.to_string(), "none");
    }

    #[test]
    fn validate_rejects_contradictions() {
        let cs = ConstraintSet {
            min_size: 3,
            max_size: Some(2),
            ..Default::default()
        };
        assert!(cs.validate().unwrap_err().contains("--min-size 3"));
        let cs = ConstraintSet {
            include: ItemSet::from([1, 2]),
            exclude: ItemSet::from([2, 3]),
            ..Default::default()
        };
        assert!(cs.validate().unwrap_err().contains("both included"));
        let cs = ConstraintSet {
            include: ItemSet::from([1, 2, 3]),
            max_size: Some(2),
            ..Default::default()
        };
        assert!(cs.validate().unwrap_err().contains("--include"));
        // unsatisfiable-but-not-contradictory is fine
        ConstraintSet {
            max_size: Some(0),
            ..Default::default()
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn satisfied_by_each_constraint_kind() {
        let set = ItemSet::from([1, 3, 5]);
        let base = ConstraintSet::none();
        assert!(base.satisfied_by(&set, 2));
        let inc = ConstraintSet {
            include: ItemSet::from([3]),
            ..base.clone()
        };
        assert!(inc.satisfied_by(&set, 2));
        assert!(!inc.satisfied_by(&ItemSet::from([1, 5]), 2));
        let exc = ConstraintSet {
            exclude: ItemSet::from([5]),
            ..base.clone()
        };
        assert!(!exc.satisfied_by(&set, 2));
        assert!(exc.satisfied_by(&ItemSet::from([1, 3]), 2));
        let min = ConstraintSet {
            min_size: 3,
            ..base.clone()
        };
        assert!(min.satisfied_by(&set, 2));
        assert!(!min.satisfied_by(&ItemSet::from([1, 3]), 2));
        let max = ConstraintSet {
            max_size: Some(2),
            ..base.clone()
        };
        assert!(!max.satisfied_by(&set, 2));
        assert!(max.satisfied_by(&ItemSet::from([1, 3]), 2));
        let ar = ConstraintSet {
            min_area: 6,
            ..base
        };
        assert!(ar.satisfied_by(&set, 2)); // 3 × 2 = 6
        assert!(!ar.satisfied_by(&set, 1)); // 3 × 1 = 3
    }

    #[test]
    fn support_floor_raises_with_area() {
        let cs = ConstraintSet {
            min_area: 10,
            ..Default::default()
        };
        // cap = num_items = 4 → ceil(10/4) = 3
        assert_eq!(cs.support_floor(4, 1), 3);
        // minsupp already above the floor wins
        assert_eq!(cs.support_floor(4, 7), 7);
        let capped = ConstraintSet {
            min_area: 10,
            max_size: Some(2),
            ..Default::default()
        };
        assert_eq!(capped.support_floor(4, 1), 5);
        let degenerate = ConstraintSet {
            min_area: 1,
            ..Default::default()
        };
        assert_eq!(degenerate.support_floor(0, 1), u32::MAX);
    }

    #[test]
    fn encode_translates_include_and_drops_exclude() {
        let recode = Recode {
            item_to_new: vec![Some(1), None, Some(0)],
            item_to_old: vec![2, 0],
            tx_to_old: vec![],
        };
        let cs = ConstraintSet {
            include: ItemSet::from([0, 2]),
            exclude: ItemSet::from([1]),
            min_size: 2,
            max_size: Some(4),
            min_area: 9,
        };
        let dense = cs.encode(&recode).unwrap();
        assert_eq!(dense.include, ItemSet::from([0, 1]));
        assert!(dense.exclude.is_empty());
        assert_eq!(dense.min_size, 2);
        assert_eq!(dense.max_size, Some(4));
        assert_eq!(dense.min_area, 9);
        // a filtered-out include item makes the constraints unsatisfiable
        let gone = ConstraintSet {
            include: ItemSet::from([1]),
            ..Default::default()
        };
        assert!(gone.encode(&recode).is_none());
    }

    #[test]
    fn apply_constraints_filters() {
        let result = MiningResult {
            sets: vec![found(&[0], 5), found(&[0, 1], 3), found(&[0, 1, 2], 1)],
        };
        let cs = ConstraintSet {
            min_size: 2,
            min_area: 6,
            ..Default::default()
        };
        let got = apply_constraints(&result, &cs);
        assert_eq!(got.sets, vec![found(&[0, 1], 3)]);
        let owned = apply_constraints_owned(result, &cs);
        assert_eq!(owned.sets, vec![found(&[0, 1], 3)]);
    }

    #[test]
    fn display_lists_active_parts() {
        let cs = ConstraintSet {
            include: ItemSet::from([1]),
            exclude: ItemSet::from([2]),
            min_size: 2,
            max_size: Some(5),
            min_area: 12,
        };
        assert_eq!(
            cs.to_string(),
            "include={1} exclude={2} min_size=2 max_size=5 min_area=12"
        );
    }
}

//! Deterministic fault injection and bounded I/O retry for the
//! crash-safety layer.
//!
//! Durable pipelines (the out-of-core shard spiller, the stream
//! checkpointer) thread *named fault points* through their I/O paths. A
//! test — or the `--inject-fault` CLI flag — arms a point with an
//! occurrence number and a failure kind, and the nth time execution
//! reaches that point the configured fault fires: a transient I/O error,
//! an out-of-disk-space error, a silent truncation of the artifact just
//! written (a torn write that an un-fsynced rename made visible), or a
//! process-killing panic. Because the trigger is "the nth hit of a named
//! point", a crash harness can deterministically kill a run at *every*
//! interesting on-disk state and then assert that resume reconstructs the
//! exact answer.
//!
//! The registry is process-global. When nothing is armed, a fault point
//! costs a single relaxed atomic load and a predictable branch — cheap
//! enough to leave in release builds (the out-of-core pipeline hits a
//! point at most a handful of times per transaction, against microseconds
//! of tree work).
//!
//! Arming is programmatic ([`arm`]/[`arm_str`]) or via the
//! `FIM_INJECT_FAULT` environment variable ([`arm_from_env`]), which holds
//! one or more comma-separated specs in the same
//! `<point>:<nth>[:io|enospc|partial|panic]` syntax as the CLI flag.
//! Tests that arm faults in-process must serialize on their own mutex
//! (the registry is shared) and call [`disarm_all`] when done.
//!
//! [`RetryPolicy`] and [`retry_io`] live here too: the bounded
//! retry-with-backoff wrapper the durable I/O paths use to absorb
//! *transient* errors (an injected `io` fault is transient; `enospc` is
//! not — retrying a full disk is wasted motion, so it propagates for the
//! graceful-degradation path to handle).

use crate::error::FimError;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The registered fault point names.
///
/// A spec naming anything else is rejected at parse time, so a typo in
/// `--inject-fault` cannot silently arm nothing.
pub mod points {
    /// Pass 1 of the out-of-core pipeline: per-transaction item counting.
    pub const COUNTS_PASS1: &str = "counts.pass1";
    /// Pass 2 of the out-of-core pipeline: per-transaction re-read/recode.
    pub const PASS2_READ: &str = "pass2.read";
    /// Spill snapshot bytes written and flushed, before durability.
    /// `partial` here truncates the flushed temporary to half its length
    /// and lets the rename publish the torn file.
    pub const SPILL_WRITE: &str = "spill.write";
    /// Between flush and `sync_all` of a spill snapshot.
    pub const SPILL_SYNC: &str = "spill.sync";
    /// Immediately before the atomic rename publishing a spill snapshot.
    pub const SPILL_RENAME: &str = "spill.rename";
    /// Reload of a spill snapshot for a merge pass.
    pub const MERGE_READ: &str = "merge.read";
    /// Append of a completed-spill record to the `MANIFEST` journal.
    pub const MANIFEST_WRITE: &str = "manifest.write";
    /// Stream-checkpoint bytes written and flushed, before the rename.
    /// `partial` truncates the flushed temporary, as for `spill.write`.
    pub const CHECKPOINT_WRITE: &str = "checkpoint.write";

    /// Every registered point.
    pub const ALL: &[&str] = &[
        COUNTS_PASS1,
        PASS2_READ,
        SPILL_WRITE,
        SPILL_SYNC,
        SPILL_RENAME,
        MERGE_READ,
        MANIFEST_WRITE,
        CHECKPOINT_WRITE,
    ];

    /// The points the out-of-core pipeline passes through — the matrix the
    /// kill-and-resume crash-consistency harness iterates.
    pub const OOCORE: &[&str] = &[
        COUNTS_PASS1,
        PASS2_READ,
        SPILL_WRITE,
        SPILL_SYNC,
        SPILL_RENAME,
        MERGE_READ,
        MANIFEST_WRITE,
    ];
}

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient I/O error ([`FimError::Io`], kind `Other`) — the
    /// retry layer treats it as retryable.
    Io,
    /// `ENOSPC` (out of disk space) — not retryable; the pipeline's
    /// graceful-degradation path handles it.
    Enospc,
    /// At a write point: silently truncate the artifact to half its
    /// length and *continue* — the torn bytes must be caught by the next
    /// validated read. At a non-write point this degrades to [`Io`].
    Partial,
    /// Kill the process mid-pipeline (a panic), leaving whatever is on
    /// disk exactly as the crash would.
    Panic,
}

impl FaultKind {
    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "io" => Ok(FaultKind::Io),
            "enospc" => Ok(FaultKind::Enospc),
            "partial" => Ok(FaultKind::Partial),
            "panic" => Ok(FaultKind::Panic),
            other => Err(format!(
                "unknown fault kind '{other}' (io|enospc|partial|panic)"
            )),
        }
    }
}

/// One armed fault: fire `kind` on the `nth` hit of `point` (1-based),
/// once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The fault point name (one of [`points::ALL`]).
    pub point: String,
    /// Which hit of the point fires the fault (1 = the first).
    pub nth: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// Parses a `<point>:<nth>[:io|enospc|partial|panic]` spec (the
/// `--inject-fault` / `FIM_INJECT_FAULT` syntax; the kind defaults to
/// `panic`). The point name must be registered in [`points::ALL`].
pub fn parse_spec(s: &str) -> Result<FaultSpec, String> {
    let mut parts = s.splitn(3, ':');
    let point = parts.next().unwrap_or_default();
    if !points::ALL.contains(&point) {
        return Err(format!(
            "unknown fault point '{point}' (known: {})",
            points::ALL.join(", ")
        ));
    }
    let nth_str = parts
        .next()
        .ok_or_else(|| format!("fault spec '{s}' is missing ':<nth>'"))?;
    let nth: u64 = nth_str
        .parse()
        .map_err(|e| format!("bad fault occurrence '{nth_str}': {e}"))?;
    if nth == 0 {
        return Err("fault occurrence is 1-based; use :1 for the first hit".into());
    }
    let kind = match parts.next() {
        None => FaultKind::Panic,
        Some(k) => FaultKind::parse(k)?,
    };
    Ok(FaultSpec {
        point: point.to_owned(),
        nth,
        kind,
    })
}

struct Armed {
    spec: FaultSpec,
    hits: u64,
    fired: bool,
}

static ANY_ARMED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Armed>> = Mutex::new(Vec::new());

/// Arms a fault. Multiple faults (even on the same point) may be armed at
/// once; each fires at most once.
pub fn arm(spec: FaultSpec) {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.push(Armed {
        spec,
        hits: 0,
        fired: false,
    });
    ANY_ARMED.store(true, Ordering::Release);
}

/// Parses and arms one spec string.
pub fn arm_str(s: &str) -> Result<(), String> {
    arm(parse_spec(s)?);
    Ok(())
}

/// Arms every comma-separated spec in the `FIM_INJECT_FAULT` environment
/// variable, if set — the subprocess-test equivalent of the CLI flag.
pub fn arm_from_env() -> Result<(), String> {
    if let Ok(val) = std::env::var("FIM_INJECT_FAULT") {
        for part in val.split(',').filter(|p| !p.trim().is_empty()) {
            arm_str(part.trim())?;
        }
    }
    Ok(())
}

/// Clears every armed fault and resets the injected-fault counter. Tests
/// sharing the process-global registry call this in their teardown.
pub fn disarm_all() {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.clear();
    ANY_ARMED.store(false, Ordering::Release);
    INJECTED.store(0, Ordering::Release);
}

/// Faults fired since the registry was armed (or last cleared) — surfaced
/// as the `faults_injected` observability counter.
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::Acquire)
}

/// A fault point with no writable artifact. Fires an armed `io`/`enospc`
/// fault as an error and a `panic` fault as a panic; an armed `partial`
/// degrades to `io` here. Disarmed cost: one relaxed load and a branch.
#[inline]
pub fn hit(point: &str) -> Result<(), FimError> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match fire(point) {
        None => Ok(()),
        Some(FaultKind::Panic) => panic!("injected fault: panic at {point}"),
        Some(FaultKind::Enospc) => Err(FimError::Io(enospc_error())),
        Some(FaultKind::Io) | Some(FaultKind::Partial) => Err(FimError::Io(io_error(point))),
    }
}

/// A fault point guarding a just-written artifact. As [`hit`], except an
/// armed `partial` fault invokes `truncate` (which should tear the
/// artifact, e.g. halve the flushed temporary file) and then returns
/// `Ok(())` so the pipeline publishes the torn bytes — the corruption
/// must be caught by the next validated read, not by the writer.
#[inline]
pub fn hit_write(point: &str, truncate: impl FnOnce()) -> Result<(), FimError> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    match fire(point) {
        None => Ok(()),
        Some(FaultKind::Panic) => panic!("injected fault: panic at {point}"),
        Some(FaultKind::Enospc) => Err(FimError::Io(enospc_error())),
        Some(FaultKind::Io) => Err(FimError::Io(io_error(point))),
        Some(FaultKind::Partial) => {
            truncate();
            Ok(())
        }
    }
}

/// The slow path: counts the hit against every armed, unfired fault on
/// this point and returns the kind of the first that reaches its trigger.
fn fire(point: &str) -> Option<FaultKind> {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for armed in reg.iter_mut() {
        if armed.fired || armed.spec.point != point {
            continue;
        }
        armed.hits += 1;
        if armed.hits >= armed.spec.nth {
            armed.fired = true;
            INJECTED.fetch_add(1, Ordering::AcqRel);
            return Some(armed.spec.kind);
        }
    }
    None
}

fn io_error(point: &str) -> std::io::Error {
    std::io::Error::other(format!("injected transient i/o fault at {point}"))
}

/// Raw `ENOSPC` on every Unix; the injected error is shaped exactly like
/// the real one so [`is_enospc`] cannot tell them apart.
const ENOSPC_RAW: i32 = 28;

fn enospc_error() -> std::io::Error {
    std::io::Error::from_raw_os_error(ENOSPC_RAW)
}

/// Whether an I/O error is out-of-disk-space — the one failure retrying
/// cannot fix and the out-of-core pipeline degrades gracefully on.
pub fn is_enospc(e: &std::io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC_RAW)
}

/// Bounded retry-with-backoff for transient I/O errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately, the
    /// default).
    pub retries: u32,
    /// Base backoff in milliseconds; attempt `k` sleeps
    /// `backoff_ms << min(k, 4)` — a deterministic schedule, so tests
    /// with `backoff_ms: 0` re-run the operation immediately.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff_ms: 25,
        }
    }
}

impl RetryPolicy {
    /// A policy with `retries` attempts on the default backoff schedule.
    pub fn with_retries(retries: u32) -> Self {
        RetryPolicy {
            retries,
            ..Self::default()
        }
    }
}

/// Runs `op`, retrying up to `policy.retries` times on *transient*
/// [`FimError::Io`] failures (everything except `ENOSPC`, which
/// propagates immediately). Each retry is counted into `attempts` — the
/// `retries_attempted` observability counter.
pub fn retry_io<T>(
    policy: RetryPolicy,
    attempts: &mut u64,
    mut op: impl FnMut() -> Result<T, FimError>,
) -> Result<T, FimError> {
    let mut tried = 0u32;
    loop {
        match op() {
            Err(FimError::Io(e)) if tried < policy.retries && !is_enospc(&e) => {
                tried += 1;
                *attempts += 1;
                if policy.backoff_ms > 0 {
                    let shift = u64::from(tried.min(4) - 1).min(4);
                    std::thread::sleep(std::time::Duration::from_millis(
                        policy.backoff_ms << shift,
                    ));
                }
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;
    use std::time::Instant;

    /// The registry is process-global; tests that arm faults serialize.
    static HOOK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn spec_parsing_accepts_the_documented_syntax() {
        let s = parse_spec("spill.write:3:io").unwrap();
        assert_eq!(s.point, "spill.write");
        assert_eq!(s.nth, 3);
        assert_eq!(s.kind, FaultKind::Io);
        // kind defaults to panic
        assert_eq!(parse_spec("merge.read:1").unwrap().kind, FaultKind::Panic);
        assert_eq!(
            parse_spec("counts.pass1:2:enospc").unwrap().kind,
            FaultKind::Enospc
        );
        assert_eq!(
            parse_spec("checkpoint.write:1:partial").unwrap().kind,
            FaultKind::Partial
        );
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(parse_spec("not.a.point:1").is_err());
        assert!(parse_spec("spill.write").is_err());
        assert!(parse_spec("spill.write:0").is_err());
        assert!(parse_spec("spill.write:x").is_err());
        assert!(parse_spec("spill.write:1:explode").is_err());
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _g = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm_str("merge.read:3:io").unwrap();
        assert!(hit(points::MERGE_READ).is_ok());
        assert!(hit(points::MERGE_READ).is_ok());
        let err = hit(points::MERGE_READ).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert_eq!(injected_count(), 1);
        // one-shot: the fourth hit passes
        assert!(hit(points::MERGE_READ).is_ok());
        // unrelated points never fire it
        assert!(hit(points::SPILL_WRITE).is_ok());
        disarm_all();
        assert_eq!(injected_count(), 0);
    }

    #[test]
    fn enospc_fault_is_shaped_like_the_real_error() {
        let _g = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm_str("spill.write:1:enospc").unwrap();
        match hit(points::SPILL_WRITE) {
            Err(FimError::Io(e)) => assert!(is_enospc(&e), "{e}"),
            other => panic!("expected enospc io error, got {other:?}"),
        }
        disarm_all();
    }

    #[test]
    fn partial_fault_runs_the_truncation_and_continues() {
        let _g = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm_str("spill.write:1:partial").unwrap();
        let mut torn = false;
        hit_write(points::SPILL_WRITE, || torn = true).unwrap();
        assert!(torn, "partial fault must invoke the truncation");
        // at a plain (non-write) point, partial degrades to io
        arm_str("spill.sync:1:partial").unwrap();
        assert!(hit(points::SPILL_SYNC).is_err());
        disarm_all();
    }

    #[test]
    fn panic_fault_panics() {
        let _g = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        arm_str("spill.rename:1:panic").unwrap();
        let r = std::panic::catch_unwind(|| hit(points::SPILL_RENAME));
        disarm_all();
        let err = r.expect_err("armed panic must fire");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("spill.rename"), "{msg}");
    }

    #[test]
    fn env_arming_parses_comma_separated_specs() {
        // parse-only shape check (no env mutation: tests run in threads)
        for spec in "spill.write:2:io, merge.read:1:panic".split(',') {
            parse_spec(spec.trim()).unwrap();
        }
    }

    #[test]
    fn retry_absorbs_transient_failures_and_counts_attempts() {
        let mut attempts = 0u64;
        let mut failures_left = 2;
        let policy = RetryPolicy {
            retries: 3,
            backoff_ms: 0,
        };
        let v = retry_io(policy, &mut attempts, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(FimError::Io(std::io::Error::other("flaky")))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(v, 7);
        assert_eq!(attempts, 2);
    }

    #[test]
    fn retry_gives_up_after_the_budget_and_never_retries_enospc() {
        let mut attempts = 0u64;
        let policy = RetryPolicy {
            retries: 2,
            backoff_ms: 0,
        };
        let err = retry_io::<()>(policy, &mut attempts, || {
            Err(FimError::Io(std::io::Error::other("always")))
        })
        .unwrap_err();
        assert!(matches!(err, FimError::Io(_)), "{err}");
        assert_eq!(attempts, 2, "budget of 2 retries = 3 total tries");
        // enospc propagates without a single retry
        attempts = 0;
        let err = retry_io::<()>(policy, &mut attempts, || {
            Err(FimError::Io(super::enospc_error()))
        })
        .unwrap_err();
        match err {
            FimError::Io(e) => assert!(is_enospc(&e)),
            other => panic!("{other}"),
        }
        assert_eq!(attempts, 0);
    }

    #[test]
    fn disarmed_hit_is_cheap() {
        let _g = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        disarm_all();
        // a coarse smoke guard, not a benchmark: 10M disarmed hits must
        // stay far under a second (~100 ns/hit would already be 50x the
        // expected single-load cost)
        let start = Instant::now();
        for _ in 0..10_000_000u64 {
            hit(points::SPILL_WRITE).unwrap();
        }
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "disarmed fault check too slow: {:?} for 10M hits",
            start.elapsed()
        );
    }
}

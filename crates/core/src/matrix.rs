//! Matrix representations of a transaction database.
//!
//! [`SuffixCountMatrix`] is the `n × |B|` matrix of the table-based Carpenter
//! variant (paper §3.1.2, Table 1):
//!
//! ```text
//! m[k][i] = 0                                   if item i ∉ t_k
//! m[k][i] = |{ j | k ≤ j ≤ n ∧ i ∈ t_j }|       otherwise
//! ```
//!
//! A non-zero entry simultaneously answers the membership test `i ∈ t_k` and
//! provides the remaining-occurrence counter used for item elimination.
//! [`BitMatrix`] is a packed boolean membership matrix used where only the
//! membership test is needed.

use crate::{recode::RecodedDatabase, Item, Tid};

/// A packed row-major bit matrix (`rows × cols` bits).
#[derive(Clone, Debug)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0u64; rows * words_per_row],
        }
    }

    /// Builds the transaction-membership matrix of a recoded database
    /// (rows = transactions, columns = items).
    pub fn from_database(db: &RecodedDatabase) -> Self {
        let mut m = BitMatrix::zeros(db.num_transactions(), db.num_items() as usize);
        for (tid, t) in db.transactions().iter().enumerate() {
            for &i in t.iter() {
                m.set(tid, i as usize);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Clears bit `(row, col)`.
    pub fn clear(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.words_per_row + col / 64] &= !(1u64 << (col % 64));
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.words_per_row + col / 64] >> (col % 64) & 1 != 0
    }

    /// Number of set bits in a row.
    pub fn row_count(&self, row: usize) -> u32 {
        let start = row * self.words_per_row;
        self.data[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

/// The Table-1 matrix: membership plus suffix occurrence counts.
#[derive(Clone, Debug)]
pub struct SuffixCountMatrix {
    num_transactions: usize,
    num_items: usize,
    /// Row-major `num_transactions × num_items`; see module docs.
    counts: Vec<u32>,
}

impl SuffixCountMatrix {
    /// Builds the matrix by one backward pass over the transactions.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        let n = db.num_transactions();
        let m = db.num_items() as usize;
        let mut counts = vec![0u32; n * m];
        let mut running = vec![0u32; m];
        for tid in (0..n).rev() {
            let row = &mut counts[tid * m..(tid + 1) * m];
            for &i in db.transaction(tid as Tid).iter() {
                running[i as usize] += 1;
                row[i as usize] = running[i as usize];
            }
        }
        SuffixCountMatrix {
            num_transactions: n,
            num_items: m,
            counts,
        }
    }

    /// The matrix entry `m[tid][item]` (see module docs).
    pub fn entry(&self, tid: Tid, item: Item) -> u32 {
        self.counts[tid as usize * self.num_items + item as usize]
    }

    /// Membership test: `item ∈ t_tid`.
    pub fn contains(&self, tid: Tid, item: Item) -> bool {
        self.entry(tid, item) != 0
    }

    /// One matrix row (the transaction `tid`, as per-item suffix counts).
    pub fn row(&self, tid: Tid) -> &[u32] {
        let m = self.num_items;
        &self.counts[tid as usize * m..(tid as usize + 1) * m]
    }

    /// Number of transactions (rows).
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of items (columns).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.counts.len() * 4
    }

    /// Renders the matrix like paper Table 1 (rows `t1..tn`, one column per
    /// item, named through `names`).
    pub fn render(&self, names: &[&str]) -> String {
        use std::fmt::Write;
        assert_eq!(names.len(), self.num_items);
        let mut out = String::new();
        out.push_str("    ");
        for name in names {
            let _ = write!(out, " {name:>3}");
        }
        out.push('\n');
        for tid in 0..self.num_transactions {
            let _ = write!(out, "t{:<3}", tid + 1);
            for i in 0..self.num_items {
                let _ = write!(out, " {:>3}", self.entry(tid as Tid, i as Item));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn suffix_counts_match_paper_table1() {
        // Expected matrix from the paper (a b c d e columns):
        let expected: [[u32; 5]; 8] = [
            [4, 5, 5, 0, 0],
            [3, 0, 0, 6, 3],
            [0, 4, 4, 5, 0],
            [2, 3, 3, 4, 0],
            [0, 2, 2, 0, 0],
            [1, 1, 0, 3, 0],
            [0, 0, 0, 2, 2],
            [0, 0, 1, 1, 1],
        ];
        let m = SuffixCountMatrix::from_database(&paper_db());
        for (tid, row) in expected.iter().enumerate() {
            for (i, &want) in row.iter().enumerate() {
                assert_eq!(
                    m.entry(tid as Tid, i as Item),
                    want,
                    "m[t{}][{}]",
                    tid + 1,
                    i
                );
            }
        }
    }

    #[test]
    fn membership_agrees_with_transactions() {
        let db = paper_db();
        let m = SuffixCountMatrix::from_database(&db);
        for (tid, t) in db.transactions().iter().enumerate() {
            for i in 0..db.num_items() {
                assert_eq!(m.contains(tid as Tid, i), t.contains(&i));
            }
        }
    }

    #[test]
    fn render_contains_values() {
        let m = SuffixCountMatrix::from_database(&paper_db());
        let s = m.render(&["a", "b", "c", "d", "e"]);
        assert!(s.contains('a'));
        assert!(s.lines().count() == 9);
        // first data row: 4 5 5 0 0
        assert!(s.lines().nth(1).unwrap().contains("4   5   5   0   0"));
    }

    #[test]
    fn bit_matrix_roundtrip() {
        let mut m = BitMatrix::zeros(3, 130);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(2, 129);
        assert!(m.get(0, 0));
        assert!(m.get(1, 64));
        assert!(m.get(2, 129));
        assert!(!m.get(0, 1));
        assert_eq!(m.row_count(2), 1);
        m.clear(2, 129);
        assert!(!m.get(2, 129));
        assert_eq!(m.row_count(2), 0);
        assert_eq!(m.heap_bytes(), 3 * 3 * 8);
    }

    #[test]
    fn bit_matrix_from_database() {
        let db = paper_db();
        let m = BitMatrix::from_database(&db);
        for (tid, t) in db.transactions().iter().enumerate() {
            assert_eq!(m.row_count(tid), t.len() as u32);
            for i in 0..db.num_items() {
                assert_eq!(m.get(tid, i as usize), t.contains(&i));
            }
        }
    }

    #[test]
    fn matrix_sizes() {
        let m = SuffixCountMatrix::from_database(&paper_db());
        assert_eq!(m.num_transactions(), 8);
        assert_eq!(m.num_items(), 5);
        assert_eq!(m.heap_bytes(), 8 * 5 * 4);
        assert_eq!(m.row(0), &[4, 5, 5, 0, 0]);
    }
}

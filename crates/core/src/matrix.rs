//! Matrix representations of a transaction database.
//!
//! [`SuffixCountMatrix`] is the `n × |B|` matrix of the table-based Carpenter
//! variant (paper §3.1.2, Table 1):
//!
//! ```text
//! m[k][i] = 0                                   if item i ∉ t_k
//! m[k][i] = |{ j | k ≤ j ≤ n ∧ i ∈ t_j }|       otherwise
//! ```
//!
//! A non-zero entry simultaneously answers the membership test `i ∈ t_k` and
//! provides the remaining-occurrence counter used for item elimination.
//! [`BitMatrix`] is a packed boolean membership matrix used where only the
//! membership test is needed. [`WordSet`] is a single owned packed row — a
//! set of small integers at 64 per `u64` word — with the word-parallel
//! kernels (in-place AND, AND+popcount, bit iteration) shared by the bitset
//! representations of every miner; [`BitsetRow`] is its borrowed view over a
//! [`BitMatrix`] row.

use crate::{recode::RecodedDatabase, Item, Tid};

/// A set of small unsigned integers packed 64 per `u64` word.
///
/// Element `x` lives at bit `x % 64` of word `x / 64`. The universe (maximum
/// element + 1) is fixed at construction; all word-parallel operations
/// require both operands to share it. Used as a transaction representation
/// (elements are item codes) by the IsTa bitset path and as a tid-set
/// representation (elements are transaction indices) by the Carpenter and
/// eclat bitset paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WordSet {
    words: Vec<u64>,
    universe: usize,
}

impl WordSet {
    /// The empty set over a universe of `universe` elements.
    pub fn new(universe: usize) -> Self {
        WordSet {
            words: vec![0u64; universe.div_ceil(64)],
            universe,
        }
    }

    /// Builds a set from strictly ascending elements, all `< universe`.
    pub fn from_sorted(elems: &[u32], universe: usize) -> Self {
        debug_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        let mut s = WordSet::new(universe);
        for &x in elems {
            s.insert(x);
        }
        s
    }

    /// The universe size fixed at construction.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The packed words, low elements first.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Inserts an element.
    #[inline]
    pub fn insert(&mut self, x: u32) {
        debug_assert!((x as usize) < self.universe);
        self.words[x as usize / 64] |= 1u64 << (x % 64);
    }

    /// Removes an element.
    #[inline]
    pub fn remove(&mut self, x: u32) {
        debug_assert!((x as usize) < self.universe);
        self.words[x as usize / 64] &= !(1u64 << (x % 64));
    }

    /// Membership test: one shift and mask.
    #[inline]
    pub fn contains(&self, x: u32) -> bool {
        debug_assert!((x as usize) < self.universe);
        self.words[x as usize / 64] >> (x % 64) & 1 != 0
    }

    /// Number of elements (popcount over all words).
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place intersection `self &= other`, returning the surviving
    /// element count. One AND and one popcount per word.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn and_in_place(&mut self, other: &WordSet) -> u32 {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut count = 0u32;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
            count += a.count_ones();
        }
        count
    }

    /// `|self ∩ other|` without materialising the intersection: fused
    /// AND+popcount per word. This is the bitset support-counting kernel —
    /// exact because every element is exactly one bit, so the popcount of
    /// the AND *is* the intersection cardinality.
    pub fn and_count(&self, other: &WordSet) -> u32 {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & b).count_ones())
            .sum()
    }

    /// In-place difference `self &= !other`, returning the surviving
    /// element count (the dEclat diffset kernel).
    pub fn andnot_in_place(&mut self, other: &WordSet) -> u32 {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut count = 0u32;
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
            count += a.count_ones();
        }
        count
    }

    /// `|self \ other|` without materialising: fused ANDNOT+popcount.
    pub fn andnot_count(&self, other: &WordSet) -> u32 {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & !b).count_ones())
            .sum()
    }

    /// Number of elements strictly below `x` (prefix popcount). Linear in
    /// words up to `x`; callers needing O(1) should precompute
    /// [`prefix_ranks`](Self::prefix_ranks).
    pub fn rank(&self, x: u32) -> u32 {
        let (w, b) = (x as usize / 64, x % 64);
        let full: u32 = self.words[..w.min(self.words.len())]
            .iter()
            .map(|w| w.count_ones())
            .sum();
        if w < self.words.len() && b != 0 {
            full + (self.words[w] & ((1u64 << b) - 1)).count_ones()
        } else {
            full
        }
    }

    /// Per-word prefix popcounts: `ranks[w]` = number of elements in words
    /// `0..w`. Combined with a masked popcount of word `w` this gives O(1)
    /// exact rank queries on a frozen set (the Carpenter bitset
    /// remaining-occurrence bound).
    pub fn prefix_ranks(&self) -> Vec<u32> {
        let mut ranks = Vec::with_capacity(self.words.len() + 1);
        let mut acc = 0u32;
        ranks.push(0);
        for w in &self.words {
            acc += w.count_ones();
            ranks.push(acc);
        }
        ranks
    }

    /// Iterates the elements in ascending order (per-word
    /// `trailing_zeros`, clearing the lowest set bit each step).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors(if word == 0 { None } else { Some(word) }, |w| {
                let w = w & (w - 1); // clear lowest set bit
                if w == 0 {
                    None
                } else {
                    Some(w)
                }
            })
            .map(move |w| wi as u32 * 64 + w.trailing_zeros())
        })
    }

    /// Iterates the elements in descending order (per-word
    /// `leading_zeros`, clearing the highest set bit each step).
    pub fn iter_desc(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().rev().flat_map(|(wi, &word)| {
            std::iter::successors(if word == 0 { None } else { Some(word) }, |w| {
                let w = w & !(1u64 << (63 - w.leading_zeros())); // clear highest set bit
                if w == 0 {
                    None
                } else {
                    Some(w)
                }
            })
            .map(move |w| wi as u32 * 64 + 63 - w.leading_zeros())
        })
    }

    /// Appends the elements in ascending order to `out` (not cleared).
    pub fn collect_into(&self, out: &mut Vec<u32>) {
        out.extend(self.iter());
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// A borrowed packed bit row: the same probe kernels as [`WordSet`] over
/// words owned elsewhere (typically one [`BitMatrix`] row).
#[derive(Clone, Copy, Debug)]
pub struct BitsetRow<'a> {
    words: &'a [u64],
}

impl<'a> BitsetRow<'a> {
    /// Wraps a word slice (element `x` at bit `x % 64` of word `x / 64`).
    pub fn new(words: &'a [u64]) -> Self {
        BitsetRow { words }
    }

    /// The packed words.
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// Membership test; elements at or beyond the word capacity are absent.
    #[inline]
    pub fn contains(&self, x: u32) -> bool {
        let w = x as usize / 64;
        w < self.words.len() && self.words[w] >> (x % 64) & 1 != 0
    }

    /// Number of elements (popcount over all words).
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fused AND+popcount against another row (shorter operand wins).
    pub fn and_count(&self, other: &BitsetRow<'_>) -> u32 {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & b).count_ones())
            .sum()
    }
}

/// A packed row-major bit matrix (`rows × cols` bits).
#[derive(Clone, Debug)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![0u64; rows * words_per_row],
        }
    }

    /// Packs every `(tid, item)` pair of a recoded database into a zeroed
    /// matrix through `bit`, which maps the pair to the `(row, col)` to set.
    /// The one packing loop behind both database constructors.
    fn pack_database(
        db: &RecodedDatabase,
        rows: usize,
        cols: usize,
        bit: impl Fn(usize, usize) -> (usize, usize),
    ) -> Self {
        let mut m = BitMatrix::zeros(rows, cols);
        for (tid, t) in db.transactions().iter().enumerate() {
            for &i in t.iter() {
                let (r, c) = bit(tid, i as usize);
                m.set(r, c);
            }
        }
        m
    }

    /// Builds the transaction-membership matrix of a recoded database
    /// (rows = transactions, columns = items).
    pub fn from_database(db: &RecodedDatabase) -> Self {
        Self::pack_database(
            db,
            db.num_transactions(),
            db.num_items() as usize,
            |tid, i| (tid, i),
        )
    }

    /// Builds the transposed (vertical) membership matrix of a recoded
    /// database: rows = items, columns = transactions. Row `i` is the tid
    /// set of item `i` as a packed bit row — the dense counterpart of
    /// [`TidLists`](crate::cover::TidLists).
    pub fn from_database_transposed(db: &RecodedDatabase) -> Self {
        Self::pack_database(
            db,
            db.num_items() as usize,
            db.num_transactions(),
            |tid, i| (i, tid),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Clears bit `(row, col)`.
    pub fn clear(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.words_per_row + col / 64] &= !(1u64 << (col % 64));
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.words_per_row + col / 64] >> (col % 64) & 1 != 0
    }

    /// Number of set bits in a row.
    pub fn row_count(&self, row: usize) -> u32 {
        self.row_words(row).count()
    }

    /// One row as a borrowed packed bit view.
    pub fn row_words(&self, row: usize) -> BitsetRow<'_> {
        debug_assert!(row < self.rows);
        let start = row * self.words_per_row;
        BitsetRow::new(&self.data[start..start + self.words_per_row])
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

/// The Table-1 matrix: membership plus suffix occurrence counts.
#[derive(Clone, Debug)]
pub struct SuffixCountMatrix {
    num_transactions: usize,
    num_items: usize,
    /// Row-major `num_transactions × num_items`; see module docs.
    counts: Vec<u32>,
}

impl SuffixCountMatrix {
    /// Builds the matrix by one backward pass over the transactions.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        let n = db.num_transactions();
        let m = db.num_items() as usize;
        let mut counts = vec![0u32; n * m];
        let mut running = vec![0u32; m];
        for tid in (0..n).rev() {
            let row = &mut counts[tid * m..(tid + 1) * m];
            for &i in db.transaction(tid as Tid).iter() {
                running[i as usize] += 1;
                row[i as usize] = running[i as usize];
            }
        }
        SuffixCountMatrix {
            num_transactions: n,
            num_items: m,
            counts,
        }
    }

    /// The matrix entry `m[tid][item]` (see module docs).
    pub fn entry(&self, tid: Tid, item: Item) -> u32 {
        self.counts[tid as usize * self.num_items + item as usize]
    }

    /// Membership test: `item ∈ t_tid`.
    pub fn contains(&self, tid: Tid, item: Item) -> bool {
        self.entry(tid, item) != 0
    }

    /// One matrix row (the transaction `tid`, as per-item suffix counts).
    pub fn row(&self, tid: Tid) -> &[u32] {
        let m = self.num_items;
        &self.counts[tid as usize * m..(tid as usize + 1) * m]
    }

    /// Number of transactions (rows).
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of items (columns).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.counts.len() * 4
    }

    /// Renders the matrix like paper Table 1 (rows `t1..tn`, one column per
    /// item, named through `names`).
    pub fn render(&self, names: &[&str]) -> String {
        use std::fmt::Write;
        assert_eq!(names.len(), self.num_items);
        let mut out = String::new();
        out.push_str("    ");
        for name in names {
            let _ = write!(out, " {name:>3}");
        }
        out.push('\n');
        for tid in 0..self.num_transactions {
            let _ = write!(out, "t{:<3}", tid + 1);
            for i in 0..self.num_items {
                let _ = write!(out, " {:>3}", self.entry(tid as Tid, i as Item));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn suffix_counts_match_paper_table1() {
        // Expected matrix from the paper (a b c d e columns):
        let expected: [[u32; 5]; 8] = [
            [4, 5, 5, 0, 0],
            [3, 0, 0, 6, 3],
            [0, 4, 4, 5, 0],
            [2, 3, 3, 4, 0],
            [0, 2, 2, 0, 0],
            [1, 1, 0, 3, 0],
            [0, 0, 0, 2, 2],
            [0, 0, 1, 1, 1],
        ];
        let m = SuffixCountMatrix::from_database(&paper_db());
        for (tid, row) in expected.iter().enumerate() {
            for (i, &want) in row.iter().enumerate() {
                assert_eq!(
                    m.entry(tid as Tid, i as Item),
                    want,
                    "m[t{}][{}]",
                    tid + 1,
                    i
                );
            }
        }
    }

    #[test]
    fn membership_agrees_with_transactions() {
        let db = paper_db();
        let m = SuffixCountMatrix::from_database(&db);
        for (tid, t) in db.transactions().iter().enumerate() {
            for i in 0..db.num_items() {
                assert_eq!(m.contains(tid as Tid, i), t.contains(&i));
            }
        }
    }

    #[test]
    fn render_contains_values() {
        let m = SuffixCountMatrix::from_database(&paper_db());
        let s = m.render(&["a", "b", "c", "d", "e"]);
        assert!(s.contains('a'));
        assert!(s.lines().count() == 9);
        // first data row: 4 5 5 0 0
        assert!(s.lines().nth(1).unwrap().contains("4   5   5   0   0"));
    }

    #[test]
    fn bit_matrix_roundtrip() {
        let mut m = BitMatrix::zeros(3, 130);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 130);
        m.set(0, 0);
        m.set(1, 64);
        m.set(2, 129);
        assert!(m.get(0, 0));
        assert!(m.get(1, 64));
        assert!(m.get(2, 129));
        assert!(!m.get(0, 1));
        assert_eq!(m.row_count(2), 1);
        m.clear(2, 129);
        assert!(!m.get(2, 129));
        assert_eq!(m.row_count(2), 0);
        assert_eq!(m.heap_bytes(), 3 * 3 * 8);
    }

    #[test]
    fn bit_matrix_from_database() {
        let db = paper_db();
        let m = BitMatrix::from_database(&db);
        for (tid, t) in db.transactions().iter().enumerate() {
            assert_eq!(m.row_count(tid), t.len() as u32);
            for i in 0..db.num_items() {
                assert_eq!(m.get(tid, i as usize), t.contains(&i));
            }
        }
    }

    #[test]
    fn matrix_sizes() {
        let m = SuffixCountMatrix::from_database(&paper_db());
        assert_eq!(m.num_transactions(), 8);
        assert_eq!(m.num_items(), 5);
        assert_eq!(m.heap_bytes(), 8 * 5 * 4);
        assert_eq!(m.row(0), &[4, 5, 5, 0, 0]);
    }

    #[test]
    fn transposed_matrix_is_vertical() {
        let db = paper_db();
        let m = BitMatrix::from_database_transposed(&db);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 8);
        for (tid, t) in db.transactions().iter().enumerate() {
            for i in 0..db.num_items() {
                assert_eq!(m.get(i as usize, tid), t.contains(&i));
            }
        }
        // item supports are the row counts of the transpose
        for i in 0..db.num_items() {
            assert_eq!(m.row_count(i as usize), db.item_supports()[i as usize]);
        }
    }

    #[test]
    fn word_set_basic_ops() {
        let mut s = WordSet::new(200);
        assert!(s.is_empty());
        for x in [0u32, 63, 64, 65, 128, 199] {
            s.insert(x);
        }
        assert_eq!(s.count(), 6);
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(!s.contains(62));
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 5);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 65, 128, 199]);
        assert_eq!(s.iter_desc().collect::<Vec<_>>(), vec![199, 128, 65, 63, 0]);
        let mut out = Vec::new();
        s.collect_into(&mut out);
        assert_eq!(out, vec![0, 63, 65, 128, 199]);
        s.clear();
        assert!(s.is_empty());
        assert!(s.heap_bytes() >= 4 * 8);
    }

    #[test]
    fn word_set_and_kernels() {
        let a = WordSet::from_sorted(&[1, 63, 64, 100, 130], 131);
        let b = WordSet::from_sorted(&[0, 63, 100, 129, 130], 131);
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(a.andnot_count(&b), 2);
        let mut c = a.clone();
        assert_eq!(c.and_in_place(&b), 3);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![63, 100, 130]);
        let mut d = a.clone();
        assert_eq!(d.andnot_in_place(&b), 2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
        // empty/single-word edge cases
        let e = WordSet::new(0);
        assert_eq!(e.count(), 0);
        assert_eq!(e.iter().count(), 0);
        let one = WordSet::from_sorted(&[5], 64);
        assert_eq!(one.and_count(&WordSet::from_sorted(&[5], 64)), 1);
    }

    #[test]
    fn word_set_rank_is_prefix_count() {
        let s = WordSet::from_sorted(&[0, 1, 63, 64, 127, 128, 190], 191);
        assert_eq!(s.rank(0), 0);
        assert_eq!(s.rank(1), 1);
        assert_eq!(s.rank(64), 3);
        assert_eq!(s.rank(65), 4);
        assert_eq!(s.rank(190), 6);
        let ranks = s.prefix_ranks();
        assert_eq!(ranks, vec![0, 3, 5, 7]);
        // O(1) rank via prefix ranks matches the linear rank
        for x in 0..191u32 {
            let (w, b) = (x as usize / 64, x % 64);
            let fast = ranks[w]
                + if b == 0 {
                    0
                } else {
                    (s.words()[w] & ((1u64 << b) - 1)).count_ones()
                };
            assert_eq!(fast, s.rank(x), "rank({x})");
        }
    }

    #[test]
    fn bitset_row_matches_word_set() {
        let s = WordSet::from_sorted(&[2, 64, 66], 100);
        let r = BitsetRow::new(s.words());
        assert!(r.contains(2));
        assert!(r.contains(66));
        assert!(!r.contains(3));
        assert!(!r.contains(1000)); // beyond capacity: absent, not a panic
        assert_eq!(r.count(), 3);
        let t = WordSet::from_sorted(&[2, 66, 99], 100);
        assert_eq!(r.and_count(&BitsetRow::new(t.words())), 2);
    }
}

//! The Galois connection between item sets and transaction-index sets
//! (paper §2.5).
//!
//! With `f(I) = K_T(I)` (the cover) and `g(K) = ⋂_{k∈K} t_k` (the
//! intersection), the pair `(f, g)` is a Galois connection between the power
//! set of the item base and the power set of the transaction indices. Both
//! compositions `f∘g` and `g∘f` are closure operators, and `f` restricted to
//! closed item sets is a bijection onto closed tid sets — which is exactly
//! why mining closed item sets can be done by enumerating or accumulating
//! transaction intersections.
//!
//! These functions exist for specification, verification, and tests; the
//! miners use specialized incremental structures instead.

use crate::{itemset::ItemSet, recode::RecodedDatabase, Item, Tid};

/// A set of transaction indices, kept strictly ascending.
pub type TidSet = Vec<Tid>;

/// `f : 2^B → 2^{1..n}` — the cover of an item set.
pub fn f(db: &RecodedDatabase, items: &ItemSet) -> TidSet {
    db.transactions()
        .iter()
        .enumerate()
        .filter(|(_, t)| crate::itemset::is_subset(items.as_slice(), t))
        .map(|(k, _)| k as Tid)
        .collect()
}

/// `g : 2^{1..n} → 2^B` — the intersection of the indexed transactions.
///
/// `g(∅)` is the full item base (neutral element of intersection).
pub fn g(db: &RecodedDatabase, tids: &[Tid]) -> ItemSet {
    let mut iter = tids.iter();
    let Some(&first) = iter.next() else {
        return ItemSet::from_sorted((0..db.num_items()).collect());
    };
    let mut acc: Vec<Item> = db.transaction(first).to_vec();
    let mut buf: Vec<Item> = Vec::new();
    for &tid in iter {
        crate::itemset::intersect_into(&acc, db.transaction(tid), &mut buf);
        std::mem::swap(&mut acc, &mut buf);
        if acc.is_empty() {
            break;
        }
    }
    ItemSet::from_sorted(acc)
}

/// The item-set closure operator `f ∘ g` — identical to
/// [`closure`](crate::closure::closure).
pub fn item_closure(db: &RecodedDatabase, items: &ItemSet) -> ItemSet {
    g(db, &f(db, items))
}

/// The tid-set closure operator `g ∘ f`.
pub fn tid_closure(db: &RecodedDatabase, tids: &[Tid]) -> TidSet {
    f(db, &g(db, tids))
}

/// Whether a tid set is closed w.r.t. `g ∘ f`.
pub fn is_tid_closed(db: &RecodedDatabase, tids: &[Tid]) -> bool {
    tid_closure(db, tids) == tids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn galois_antitone() {
        let db = db();
        // I ⊆ J  ⇒  f(J) ⊆ f(I)
        let i = ItemSet::from([1]);
        let j = ItemSet::from([1, 2]);
        let fi = f(&db, &i);
        let fj = f(&db, &j);
        assert!(fj.iter().all(|t| fi.contains(t)));
        // K ⊆ L  ⇒  g(L) ⊆ g(K)
        let gk = g(&db, &[0, 3]);
        let gl = g(&db, &[0, 3, 4]);
        assert!(gl.is_subset_of(&gk));
    }

    #[test]
    fn galois_adjunction_law() {
        // K ⊆ f(I)  ⇔  I ⊆ g(K)
        let db = db();
        let sets = [
            ItemSet::from([1, 2]),
            ItemSet::from([3]),
            ItemSet::from([0, 3]),
        ];
        let tidsets: [&[Tid]; 3] = [&[0, 3], &[1, 6], &[2, 7]];
        for i in &sets {
            let fi = f(&db, i);
            for k in &tidsets {
                let lhs = k.iter().all(|t| fi.contains(t));
                let rhs = i.is_subset_of(&g(&db, k));
                assert_eq!(lhs, rhs, "adjunction failed for I={i:?} K={k:?}");
            }
        }
    }

    #[test]
    fn compositions_are_closure_operators() {
        let db = db();
        let i = ItemSet::from([4]);
        let ci = item_closure(&db, &i);
        assert!(i.is_subset_of(&ci));
        assert_eq!(item_closure(&db, &ci), ci);
        let k: &[Tid] = &[1, 6];
        let ck = tid_closure(&db, k);
        assert!(k.iter().all(|t| ck.contains(t)));
        assert_eq!(tid_closure(&db, &ck), ck);
    }

    #[test]
    fn bijection_between_closed_sets() {
        let db = db();
        // closed item set {d,e} ↔ closed tid set {1,6,7}
        let de = ItemSet::from([3, 4]);
        let k = f(&db, &de);
        assert_eq!(k, vec![1, 6, 7]);
        assert!(is_tid_closed(&db, &k));
        assert_eq!(g(&db, &k), de);
    }

    #[test]
    fn g_of_empty_is_item_base() {
        let db = db();
        assert_eq!(g(&db, &[]), ItemSet::from([0, 1, 2, 3, 4]));
    }
}

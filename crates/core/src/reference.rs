//! Brute-force reference miners — the ground truth for every test.
//!
//! [`ReferenceMiner`] materializes the full set `C(T)` of all transaction
//! intersections via the recursive relation of paper §3.2:
//!
//! ```text
//! C(∅)      = ∅
//! C(T ∪ {t}) = C(T) ∪ {t} ∪ { I | ∃ s ∈ C(T) : I = s ∩ t }
//! ```
//!
//! and then computes each candidate's exact support by scanning. This is
//! deliberately simple and obviously correct; it is quadratic in |C(T)| and
//! only suitable for the small databases used in tests.

use crate::{
    itemset::ItemSet,
    miner::{ClosedMiner, FoundSet, MiningResult},
    recode::RecodedDatabase,
};
use std::collections::HashSet;

/// The brute-force closed-set miner (test ground truth).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceMiner;

impl ClosedMiner for ReferenceMiner {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        mine_reference(db, minsupp)
    }
}

/// Free-function form of [`ReferenceMiner`].
pub fn mine_reference(db: &RecodedDatabase, minsupp: u32) -> MiningResult {
    let minsupp = minsupp.max(1);
    let mut closed: HashSet<ItemSet> = HashSet::new();
    let mut buf: Vec<crate::Item> = Vec::new();
    for t in db.transactions() {
        let t_set = ItemSet::from_sorted(t.to_vec());
        let mut new_sets: Vec<ItemSet> = Vec::new();
        for s in &closed {
            crate::itemset::intersect_into(s.as_slice(), t, &mut buf);
            if !buf.is_empty() {
                new_sets.push(ItemSet::from_sorted(buf.clone()));
            }
        }
        closed.insert(t_set);
        closed.extend(new_sets);
    }
    let mut result: MiningResult = closed
        .into_iter()
        .map(|items| {
            let support = db.support(&items);
            FoundSet::new(items, support)
        })
        .filter(|s| s.support >= minsupp)
        .collect();
    result.canonicalize();
    result
}

/// Enumerates **all** frequent item sets (not only closed ones) with their
/// supports, by breadth-first subset expansion. Exponential; tests only.
pub fn mine_all_frequent(db: &RecodedDatabase, minsupp: u32) -> MiningResult {
    let minsupp = minsupp.max(1);
    let num_items = db.num_items();
    let mut result = MiningResult::new();
    // frontier of frequent sets of size k, extended one item at a time
    let mut frontier: Vec<ItemSet> = (0..num_items)
        .map(|i| ItemSet::from([i]))
        .filter(|s| db.support(s) >= minsupp)
        .collect();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for s in &frontier {
            let support = db.support(s);
            result.sets.push(FoundSet::new(s.clone(), support));
            let start = s.max_item().map_or(0, |m| m + 1);
            for i in start..num_items {
                let mut e = s.clone();
                e.insert(i);
                if db.support(&e) >= minsupp {
                    next.push(e);
                }
            }
        }
        frontier = next;
    }
    result.canonicalize();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::is_closed;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn reference_reports_only_closed_sets() {
        let db = paper_db();
        let r = mine_reference(&db, 1);
        assert!(!r.is_empty());
        for s in &r.sets {
            assert!(is_closed(&db, &s.items), "{:?} is not closed", s.items);
            assert_eq!(db.support(&s.items), s.support);
        }
    }

    #[test]
    fn reference_is_complete() {
        // every closed set must appear: check against direct enumeration of
        // all item subsets (item base is tiny)
        let db = paper_db();
        let r = mine_reference(&db, 1);
        let mut count = 0usize;
        for mask in 1u32..(1 << 5) {
            let items: ItemSet = (0..5).filter(|i| mask >> i & 1 == 1).collect();
            if is_closed(&db, &items) {
                count += 1;
                assert_eq!(
                    r.support_of(&items),
                    Some(db.support(&items)),
                    "missing closed set {items:?}"
                );
            }
        }
        assert_eq!(r.len(), count);
    }

    #[test]
    fn minsupp_filters() {
        let db = paper_db();
        let all = mine_reference(&db, 1);
        let some = mine_reference(&db, 3);
        assert!(some.len() < all.len());
        for s in &some.sets {
            assert!(s.support >= 3);
        }
        // {b,c} has support 4 and is closed
        assert_eq!(some.support_of(&ItemSet::from([1, 2])), Some(4));
    }

    #[test]
    fn known_closed_sets_of_paper_example() {
        let db = paper_db();
        let r = mine_reference(&db, 1);
        // spot-checks derivable by hand
        assert_eq!(r.support_of(&ItemSet::from([3])), Some(6)); // {d}
        assert_eq!(r.support_of(&ItemSet::from([3, 4])), Some(3)); // {d,e}
        assert_eq!(r.support_of(&ItemSet::from([0, 1, 2])), Some(2)); // {a,b,c}
        assert_eq!(r.support_of(&ItemSet::from([0, 1, 2, 3])), Some(1));
        // {e} alone is not closed (closure {d,e})
        assert_eq!(r.support_of(&ItemSet::from([4])), None);
    }

    #[test]
    fn all_frequent_includes_nonclosed() {
        let db = paper_db();
        let r = mine_all_frequent(&db, 3);
        // {e} has support 3 (not closed, but frequent)
        assert_eq!(r.support_of(&ItemSet::from([4])), Some(3));
        // closure-based reconstruction: support(F) = max over closed C ⊇ F
        let closed = mine_reference(&db, 1);
        for f in &r.sets {
            let recon = closed
                .sets
                .iter()
                .filter(|c| f.items.is_subset_of(&c.items))
                .map(|c| c.support)
                .max()
                .unwrap();
            assert_eq!(recon, f.support, "reconstruction failed for {:?}", f.items);
        }
    }

    #[test]
    fn empty_database_yields_empty_result() {
        let db = RecodedDatabase::from_dense(vec![], 0);
        assert!(mine_reference(&db, 1).is_empty());
        assert!(mine_all_frequent(&db, 1).is_empty());
    }

    #[test]
    fn single_transaction() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 2]], 3);
        let r = mine_reference(&db, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.support_of(&ItemSet::from([0, 2])), Some(1));
    }

    #[test]
    fn duplicate_transactions_accumulate_support() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1]; 4], 2);
        let r = mine_reference(&db, 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.support_of(&ItemSet::from([0, 1])), Some(4));
    }
}

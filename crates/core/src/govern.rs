//! Resource governance for mining runs: budgets, cooperative cancellation,
//! and structured interruption outcomes.
//!
//! The paper itself warns that the intersection approach's intermediate
//! prefix tree is unbounded (§3.2): an over-dense parameter choice can make
//! the repository explode long before the run completes. This module gives
//! every miner a uniform way to bound that resource — and wall-clock time,
//! result cardinality, or an external cancellation signal — without paying
//! anything on the hot path when no budget is set:
//!
//! * [`Budget`] describes the limits (all optional): a wall-clock timeout,
//!   maximum live tree nodes, maximum arena bytes, maximum closed sets,
//!   maximum processed transactions, and a [`CancelToken`].
//! * [`Governor`] is the per-run checking state created by
//!   [`Budget::start`]; miners call [`Governor::check`] at their natural
//!   checkpoint (once per transaction for the cumulative miners, once per
//!   recursion step for the enumeration miners) through the
//!   [`checkpoint!`](crate::checkpoint) macro, which is a single `Option`
//!   test when no governor is installed.
//! * On a trip, governed miners return
//!   [`MineOutcome::Interrupted`] carrying the *exact-so-far* partial
//!   result (for IsTa's cumulative scheme: the closed sets of the processed
//!   transaction prefix), the [`TripReason`], and a [`Progress`] snapshot —
//!   instead of aborting the process.
//! * [`Degradation`] records the graceful-degradation mode in which a
//!   tripped node budget auto-prunes the tree to a raised effective minimum
//!   support and the run continues (see `IstaMiner` in the `fim-ista`
//!   crate).
//!
//! [`checkpoint!`]: crate::checkpoint

use crate::miner::MiningResult;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in [`Governor::check`] calls) the wall clock is consulted
/// when a deadline is set. Node/byte/set/cancel checks run on every call
/// (they are a handful of compares and one relaxed atomic load); reading
/// the clock is strided so that enumeration miners, whose checkpoint sits
/// in a per-recursion hot path, do not pay a syscall-shaped cost per node.
const DEADLINE_STRIDE: u32 = 64;

/// A cloneable cooperative cancellation flag.
///
/// Cancelling is a one-way latch: once [`cancel`](Self::cancel) has been
/// called every clone observes [`is_cancelled`](Self::is_cancelled) as
/// `true` and any governed miner holding the token trips with
/// [`TripReason::Cancelled`] at its next checkpoint.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Latches the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`cancel`](Self::cancel) has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a governed mining run stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Timeout,
    /// The live prefix-tree node count exceeded the budget.
    NodeBudget,
    /// The approximate resident bytes exceeded the budget.
    ByteBudget,
    /// The number of result sets exceeded the budget.
    ClosedSetBudget,
    /// The processed-transaction budget was reached.
    TransactionBudget,
    /// The [`CancelToken`] was cancelled.
    Cancelled,
    /// The spill device ran out of space (`ENOSPC`); the run degraded to
    /// an exact partial over the transactions processed so far.
    DiskFull,
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TripReason::Timeout => "timeout",
            TripReason::NodeBudget => "node budget",
            TripReason::ByteBudget => "byte budget",
            TripReason::ClosedSetBudget => "closed-set budget",
            TripReason::TransactionBudget => "transaction budget",
            TripReason::Cancelled => "cancelled",
            TripReason::DiskFull => "disk full",
        };
        f.write_str(s)
    }
}

/// Resource limits for one mining run. All limits are optional; the default
/// budget is unlimited and never trips.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock limit, measured from [`Budget::start`].
    pub timeout: Option<Duration>,
    /// Maximum live prefix-tree nodes (cumulative miners).
    pub max_nodes: Option<usize>,
    /// Maximum approximate resident bytes of the mining structure.
    pub max_bytes: Option<usize>,
    /// Maximum result sets (enumeration miners check this as they emit).
    pub max_closed_sets: Option<usize>,
    /// Maximum processed transactions (total weight).
    pub max_transactions: Option<u64>,
    /// When `true`, a tripped node budget degrades gracefully instead of
    /// interrupting: the miner raises its effective minimum support until
    /// the tree fits the budget again and reports the [`Degradation`] in
    /// the outcome. Only the sequential IsTa miner implements this.
    pub degrade: bool,
    /// External cooperative cancellation.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// The unlimited budget (alias for `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Sets a wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the live-node cap.
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Sets the approximate-bytes cap.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Sets the result-set cap.
    pub fn with_max_closed_sets(mut self, max_sets: usize) -> Self {
        self.max_closed_sets = Some(max_sets);
        self
    }

    /// Sets the processed-transaction cap.
    pub fn with_max_transactions(mut self, max_transactions: u64) -> Self {
        self.max_transactions = Some(max_transactions);
        self
    }

    /// Enables graceful degradation on a tripped node budget.
    pub fn with_degradation(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Whether no limit is set at all (such a budget never trips).
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_nodes.is_none()
            && self.max_bytes.is_none()
            && self.max_closed_sets.is_none()
            && self.max_transactions.is_none()
            && self.cancel.is_none()
    }

    /// Starts the clock: resolves the timeout to a deadline and returns the
    /// per-run checking state.
    pub fn start(&self) -> Governor {
        self.start_with_secondary(None)
    }

    /// Like [`start`](Budget::start), with an additional internal
    /// cancellation token — used by parallel miners so one tripped shard
    /// can stop its siblings without touching the caller's token.
    pub fn start_with_secondary(&self, secondary: Option<CancelToken>) -> Governor {
        Governor {
            deadline: self.timeout.map(|t| Instant::now() + t),
            max_nodes: self.max_nodes.unwrap_or(usize::MAX),
            max_bytes: self.max_bytes.unwrap_or(usize::MAX),
            max_sets: self.max_closed_sets.unwrap_or(usize::MAX),
            max_transactions: self.max_transactions.unwrap_or(u64::MAX),
            cancel: self.cancel.clone(),
            enabled: !self.is_unlimited() || secondary.is_some(),
            secondary,
            processed: 0,
            tick: 0,
        }
    }
}

/// Per-run budget-checking state (see [`Budget::start`]).
#[derive(Clone, Debug)]
pub struct Governor {
    deadline: Option<Instant>,
    max_nodes: usize,
    max_bytes: usize,
    max_sets: usize,
    max_transactions: u64,
    cancel: Option<CancelToken>,
    secondary: Option<CancelToken>,
    processed: u64,
    tick: u32,
    enabled: bool,
}

impl Governor {
    /// Records `weight` more processed transactions (for the
    /// transaction budget and [`Progress`] accounting).
    #[inline]
    pub fn add_processed(&mut self, weight: u64) {
        self.processed += weight;
    }

    /// Total transactions recorded via [`add_processed`](Self::add_processed).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The checkpoint: compares the current resource occupancy against the
    /// budget and returns the first tripped limit, or `None`.
    ///
    /// `nodes`/`bytes` describe the mining structure (pass 0 when the miner
    /// has no such notion), `sets` the result cardinality so far. With an
    /// unlimited budget this is a single branch.
    #[inline]
    pub fn check(&mut self, nodes: usize, bytes: usize, sets: usize) -> Option<TripReason> {
        if !self.enabled {
            return None;
        }
        self.check_enabled(nodes, bytes, sets)
    }

    #[inline(never)]
    fn check_enabled(&mut self, nodes: usize, bytes: usize, sets: usize) -> Option<TripReason> {
        if nodes > self.max_nodes {
            return Some(TripReason::NodeBudget);
        }
        if bytes > self.max_bytes {
            return Some(TripReason::ByteBudget);
        }
        if sets > self.max_sets {
            return Some(TripReason::ClosedSetBudget);
        }
        if self.processed >= self.max_transactions {
            return Some(TripReason::TransactionBudget);
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(TripReason::Cancelled);
            }
        }
        if let Some(c) = &self.secondary {
            if c.is_cancelled() {
                return Some(TripReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            self.tick = self.tick.wrapping_add(1);
            if (self.tick == 1 || self.tick.is_multiple_of(DEADLINE_STRIDE))
                && Instant::now() >= deadline
            {
                return Some(TripReason::Timeout);
            }
        }
        None
    }

    /// Whether only the node budget would trip right now — used by the
    /// degradation path to decide that pruning (which can only shrink the
    /// node count) is a meaningful response.
    pub fn node_budget(&self) -> Option<usize> {
        (self.max_nodes != usize::MAX).then_some(self.max_nodes)
    }
}

/// The shared miner checkpoint: evaluates to `Option<TripReason>`.
///
/// `$gov` is anything with an `as_mut()` yielding `Option<&mut Governor>`
/// (an `Option<Governor>` or `Option<&mut Governor>`); with `None` the
/// expansion is a single pattern match, so the ungoverned hot path carries
/// no checking cost.
#[macro_export]
macro_rules! checkpoint {
    ($gov:expr, $nodes:expr, $bytes:expr, $sets:expr) => {
        match ($gov).as_mut() {
            Some(g) => g.check($nodes, $bytes, $sets),
            None => None,
        }
    };
}

/// How far a mining run had progressed when it was interrupted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    /// Work units completed (transactions for the cumulative miners,
    /// result sets for the enumeration miners).
    pub processed: u64,
    /// Total work units, when known up front (`None` for enumeration
    /// miners, whose search-space size is not known in advance).
    pub total: Option<u64>,
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.total {
            Some(total) => write!(f, "{}/{}", self.processed, total),
            None => write!(f, "{}", self.processed),
        }
    }
}

/// Record of a graceful degradation: the node budget tripped and the miner
/// raised its effective minimum support until the tree fit again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Degradation {
    /// The minimum support the caller asked for.
    pub requested_minsupp: u32,
    /// The raised minimum support the run finished with. The reported sets
    /// are exactly the closed sets at this threshold (a subset of the
    /// requested answer).
    pub effective_minsupp: u32,
    /// Number of raise-and-prune steps taken.
    pub steps: u32,
}

/// Outcome of a governed mining run.
#[derive(Clone, Debug)]
pub enum MineOutcome {
    /// The run finished. `degradation` is set when the node budget tripped
    /// in degradation mode and the result is at a raised threshold.
    Complete {
        /// The mined result.
        result: MiningResult,
        /// Degradation record, if the run degraded.
        degradation: Option<Degradation>,
    },
    /// The run tripped a budget and stopped early with a well-defined
    /// partial result: for the cumulative (IsTa-family) miners, the exact
    /// closed sets of the processed transaction prefix; for the
    /// enumeration miners, the subset of the answer emitted so far (every
    /// reported support is exact).
    Interrupted {
        /// The partial result.
        partial: MiningResult,
        /// Which limit tripped.
        reason: TripReason,
        /// Progress at the trip point.
        progress: Progress,
    },
}

impl MineOutcome {
    /// A completed, non-degraded outcome.
    pub fn complete(result: MiningResult) -> Self {
        MineOutcome::Complete {
            result,
            degradation: None,
        }
    }

    /// The mined sets, complete or partial.
    pub fn result(&self) -> &MiningResult {
        match self {
            MineOutcome::Complete { result, .. } => result,
            MineOutcome::Interrupted { partial, .. } => partial,
        }
    }

    /// Consumes the outcome into its (complete or partial) result.
    pub fn into_result(self) -> MiningResult {
        match self {
            MineOutcome::Complete { result, .. } => result,
            MineOutcome::Interrupted { partial, .. } => partial,
        }
    }

    /// Whether the run was interrupted.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, MineOutcome::Interrupted { .. })
    }

    /// Applies `f` to the contained result, preserving the outcome shape.
    pub fn map_result<F: FnOnce(MiningResult) -> MiningResult>(self, f: F) -> Self {
        match self {
            MineOutcome::Complete {
                result,
                degradation,
            } => MineOutcome::Complete {
                result: f(result),
                degradation,
            },
            MineOutcome::Interrupted {
                partial,
                reason,
                progress,
            } => MineOutcome::Interrupted {
                partial: f(partial),
                reason,
                progress,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        let mut g = b.start();
        for _ in 0..1000 {
            g.add_processed(1_000_000);
            assert_eq!(
                g.check(usize::MAX - 1, usize::MAX - 1, usize::MAX - 1),
                None
            );
        }
    }

    #[test]
    fn node_budget_trips() {
        let mut g = Budget::unlimited().with_max_nodes(10).start();
        assert_eq!(g.check(10, 0, 0), None, "at the cap is fine");
        assert_eq!(g.check(11, 0, 0), Some(TripReason::NodeBudget));
    }

    #[test]
    fn byte_and_set_budgets_trip() {
        let mut g = Budget::unlimited().with_max_bytes(100).start();
        assert_eq!(g.check(0, 101, 0), Some(TripReason::ByteBudget));
        let mut g = Budget::unlimited().with_max_closed_sets(5).start();
        assert_eq!(g.check(0, 0, 6), Some(TripReason::ClosedSetBudget));
    }

    #[test]
    fn transaction_budget_trips_at_boundary() {
        let mut g = Budget::unlimited().with_max_transactions(3).start();
        g.add_processed(2);
        assert_eq!(g.check(0, 0, 0), None);
        g.add_processed(1);
        assert_eq!(g.check(0, 0, 0), Some(TripReason::TransactionBudget));
        assert_eq!(g.processed(), 3);
    }

    #[test]
    fn cancel_token_latches_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        let mut g = Budget::unlimited().with_cancel(clone).start();
        assert_eq!(g.check(0, 0, 0), None);
        token.cancel();
        assert_eq!(g.check(0, 0, 0), Some(TripReason::Cancelled));
    }

    #[test]
    fn secondary_token_trips_too() {
        let internal = CancelToken::new();
        let mut g = Budget::unlimited().start_with_secondary(Some(internal.clone()));
        assert_eq!(g.check(0, 0, 0), None);
        internal.cancel();
        assert_eq!(g.check(0, 0, 0), Some(TripReason::Cancelled));
    }

    #[test]
    fn zero_timeout_trips_on_first_check() {
        let mut g = Budget::unlimited()
            .with_timeout(Duration::from_secs(0))
            .start();
        assert_eq!(g.check(0, 0, 0), Some(TripReason::Timeout));
    }

    #[test]
    fn generous_timeout_does_not_trip() {
        let mut g = Budget::unlimited()
            .with_timeout(Duration::from_secs(3600))
            .start();
        for _ in 0..500 {
            assert_eq!(g.check(0, 0, 0), None);
        }
    }

    #[test]
    fn checkpoint_macro_with_and_without_governor() {
        let mut none: Option<Governor> = None;
        assert_eq!(checkpoint!(none, 10, 10, 10), None);
        let mut some = Some(Budget::unlimited().with_max_nodes(5).start());
        assert_eq!(checkpoint!(some, 6, 0, 0), Some(TripReason::NodeBudget));
    }

    #[test]
    fn trip_reason_display() {
        assert_eq!(TripReason::Timeout.to_string(), "timeout");
        assert_eq!(TripReason::NodeBudget.to_string(), "node budget");
        assert_eq!(TripReason::Cancelled.to_string(), "cancelled");
    }

    #[test]
    fn progress_display() {
        let p = Progress {
            processed: 3,
            total: Some(8),
        };
        assert_eq!(p.to_string(), "3/8");
        let p = Progress {
            processed: 42,
            total: None,
        };
        assert_eq!(p.to_string(), "42");
    }

    #[test]
    fn outcome_accessors() {
        let complete = MineOutcome::complete(MiningResult::new());
        assert!(!complete.is_interrupted());
        assert!(complete.result().is_empty());
        let interrupted = MineOutcome::Interrupted {
            partial: MiningResult::new(),
            reason: TripReason::Timeout,
            progress: Progress::default(),
        };
        assert!(interrupted.is_interrupted());
        assert!(interrupted.into_result().is_empty());
    }
}

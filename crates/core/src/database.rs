//! Raw transaction databases over named items.

use crate::{catalog::ItemCatalog, itemset::ItemSet, Item, Tid};

/// A transaction database: a bag of transactions over an item base
/// (paper §2.1).
///
/// Transactions are stored in insertion order; duplicates are allowed (the
/// database is a multiset of item sets). Item codes are "raw" catalog codes;
/// mining algorithms operate on a [`RecodedDatabase`](crate::RecodedDatabase)
/// produced by [`RecodedDatabase::prepare`](crate::RecodedDatabase::prepare),
/// which filters infrequent items and applies the item/transaction orders of
/// paper §3.4.
#[derive(Clone, Debug, Default)]
pub struct TransactionDatabase {
    catalog: ItemCatalog,
    transactions: Vec<ItemSet>,
}

impl TransactionDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from transactions given as item-name slices.
    pub fn from_named<S: AsRef<str>>(transactions: &[Vec<S>]) -> Self {
        let mut db = Self::new();
        for t in transactions {
            db.push_named(t);
        }
        db
    }

    /// Builds a database from transactions given as raw item-code vectors.
    ///
    /// The catalog is filled with anonymous names covering the largest code.
    pub fn from_codes(transactions: Vec<Vec<Item>>) -> Self {
        let max = transactions
            .iter()
            .flat_map(|t| t.iter().copied())
            .max()
            .map_or(0, |m| m as usize + 1);
        Self::from_codes_with_base(transactions, max)
    }

    /// Builds a database from raw item-code vectors over an explicit item
    /// base `0..num_items` (useful when some items never occur).
    ///
    /// # Panics
    ///
    /// Panics if a transaction contains a code `>= num_items`.
    pub fn from_codes_with_base(transactions: Vec<Vec<Item>>, num_items: usize) -> Self {
        let mut db = Self {
            catalog: ItemCatalog::anonymous(num_items),
            transactions: Vec::with_capacity(transactions.len()),
        };
        for t in transactions {
            assert!(
                t.iter().all(|&i| (i as usize) < num_items),
                "item code out of range for the declared item base"
            );
            db.transactions.push(ItemSet::new(t));
        }
        db
    }

    /// Appends a transaction given by item names, interning new names.
    pub fn push_named<S: AsRef<str>>(&mut self, items: &[S]) {
        let codes: Vec<Item> = items
            .iter()
            .map(|s| self.catalog.intern(s.as_ref()))
            .collect();
        self.transactions.push(ItemSet::new(codes));
    }

    /// Appends a transaction given as an item set over existing codes.
    pub fn push(&mut self, items: ItemSet) {
        self.transactions.push(items);
    }

    /// The item catalog.
    pub fn catalog(&self) -> &ItemCatalog {
        &self.catalog
    }

    /// Number of transactions.
    pub fn num_transactions(&self) -> usize {
        self.transactions.len()
    }

    /// Number of distinct items in the catalog (the item base size).
    pub fn num_items(&self) -> usize {
        self.catalog.len()
    }

    /// Whether the database holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions in insertion order.
    pub fn transactions(&self) -> &[ItemSet] {
        &self.transactions
    }

    /// Occurrence count of every item code (index = code).
    pub fn item_frequencies(&self) -> Vec<u32> {
        let mut freq = vec![0u32; self.num_items()];
        for t in &self.transactions {
            for it in t.iter() {
                freq[it as usize] += 1;
            }
        }
        freq
    }

    /// The cover of `items`: indices of transactions containing the set
    /// (paper §2.1, `K_T(I)`).
    pub fn cover(&self, items: &ItemSet) -> Vec<Tid> {
        crate::cover::cover(&self.transactions, items)
    }

    /// The support of `items`: the size of its cover (paper §2.1, `s_T(I)`).
    pub fn support(&self, items: &ItemSet) -> u32 {
        self.cover(items).len() as u32
    }

    /// Total number of item occurrences over all transactions.
    pub fn total_occurrences(&self) -> usize {
        self.transactions.iter().map(ItemSet::len).sum()
    }

    /// The transposed database: items become transactions and vice versa
    /// (the gene-expression dual of paper §4).
    ///
    /// Transaction `k` of the result contains item `j` iff transaction `j`
    /// of `self` contains item `k`. Item names of the result are the tids of
    /// `self` rendered in decimal.
    pub fn transpose(&self) -> TransactionDatabase {
        let mut rows: Vec<Vec<Item>> = vec![Vec::new(); self.num_items()];
        for (tid, t) in self.transactions.iter().enumerate() {
            for it in t.iter() {
                rows[it as usize].push(tid as Item);
            }
        }
        let mut db = TransactionDatabase {
            catalog: ItemCatalog::anonymous(self.num_transactions()),
            transactions: Vec::with_capacity(rows.len()),
        };
        for row in rows {
            // tids were visited in ascending order, so rows are sorted
            db.transactions.push(ItemSet::from_sorted(row));
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example database of paper Table 1.
    pub(crate) fn paper_db() -> TransactionDatabase {
        TransactionDatabase::from_named(&[
            vec!["a", "b", "c"],
            vec!["a", "d", "e"],
            vec!["b", "c", "d"],
            vec!["a", "b", "c", "d"],
            vec!["b", "c"],
            vec!["a", "b", "d"],
            vec!["d", "e"],
            vec!["c", "d", "e"],
        ])
    }

    #[test]
    fn build_from_names() {
        let db = paper_db();
        assert_eq!(db.num_transactions(), 8);
        assert_eq!(db.num_items(), 5);
        assert!(!db.is_empty());
        // a=0 b=1 c=2 d=3 e=4 in order of first appearance
        assert_eq!(db.catalog().code("e"), Some(4));
        assert_eq!(db.transactions()[3], ItemSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn frequencies_match_paper_table1_column_heads() {
        let db = paper_db();
        // paper: a occurs 4x, b 5x, c 5x, d 6x, e 3x
        assert_eq!(db.item_frequencies(), vec![4, 5, 5, 6, 3]);
        assert_eq!(db.total_occurrences(), 23);
    }

    #[test]
    fn cover_and_support() {
        let db = paper_db();
        let bc = ItemSet::from([1, 2]);
        assert_eq!(db.cover(&bc), vec![0, 2, 3, 4]);
        assert_eq!(db.support(&bc), 4);
        assert_eq!(db.support(&ItemSet::empty()), 8);
        assert_eq!(db.support(&ItemSet::from([0, 4])), 1); // {a,e} only t2
    }

    #[test]
    fn from_codes_roundtrip() {
        let db = TransactionDatabase::from_codes(vec![vec![2, 0], vec![1]]);
        assert_eq!(db.num_items(), 3);
        assert_eq!(db.transactions()[0], ItemSet::from([0, 2]));
        assert_eq!(db.catalog().name(2), Some("2"));
    }

    #[test]
    fn transpose_involution() {
        let db = paper_db();
        let tdb = db.transpose();
        assert_eq!(tdb.num_transactions(), db.num_items());
        assert_eq!(tdb.num_items(), db.num_transactions());
        // item a (=0) occurs in t1,t2,t4,t6 → tids 0,1,3,5
        assert_eq!(tdb.transactions()[0], ItemSet::from([0, 1, 3, 5]));
        let back = tdb.transpose();
        assert_eq!(back.transactions(), db.transactions());
    }

    #[test]
    fn empty_database() {
        let db = TransactionDatabase::new();
        assert_eq!(db.num_transactions(), 0);
        assert_eq!(db.item_frequencies(), Vec::<u32>::new());
        assert_eq!(db.support(&ItemSet::empty()), 0);
    }
}

//! The closure operator on item sets (paper §2.4).
//!
//! An item set is *closed* iff it equals the intersection of all transactions
//! that contain it. The [`closure`] function computes that intersection; the
//! intersection over an empty cover is defined as the full item base (the
//! neutral element of intersection), matching the Galois-connection view of
//! paper §2.5.

use crate::{cover::BitCover, itemset::ItemSet, recode::RecodedDatabase, Item};

/// The closure `(f ∘ g)(I)`: the intersection of all transactions containing
/// `I`, or the full item base if no transaction contains `I`.
pub fn closure(db: &RecodedDatabase, items: &ItemSet) -> ItemSet {
    let mut acc: Option<Vec<Item>> = None;
    let mut buf: Vec<Item> = Vec::new();
    for t in db.transactions() {
        if !crate::itemset::is_subset(items.as_slice(), t) {
            continue;
        }
        match acc.as_mut() {
            None => acc = Some(t.to_vec()),
            Some(a) => {
                crate::itemset::intersect_into(a, t, &mut buf);
                std::mem::swap(a, &mut buf);
                if a.len() == items.len() {
                    // cannot shrink below `items`; early exit
                    break;
                }
            }
        }
    }
    match acc {
        Some(a) => ItemSet::from_sorted(a),
        None => ItemSet::from_sorted((0..db.num_items()).collect()),
    }
}

/// [`closure`] against a prebuilt [`BitCover`]: the cover is found by
/// word-AND + popcount bit iteration instead of a per-transaction subset
/// scan, and only the covering transactions are intersected. Identical
/// output to [`closure`]; build the `BitCover` once when computing many
/// closures over the same database.
pub fn closure_with(db: &RecodedDatabase, bits: &BitCover, items: &ItemSet) -> ItemSet {
    let tids = bits.cover(items);
    let mut acc: Option<Vec<Item>> = None;
    let mut buf: Vec<Item> = Vec::new();
    for &tid in &tids {
        let t = db.transaction(tid);
        match acc.as_mut() {
            None => acc = Some(t.to_vec()),
            Some(a) => {
                crate::itemset::intersect_into(a, t, &mut buf);
                std::mem::swap(a, &mut buf);
                if a.len() == items.len() {
                    break;
                }
            }
        }
    }
    match acc {
        Some(a) => ItemSet::from_sorted(a),
        None => ItemSet::from_sorted((0..db.num_items()).collect()),
    }
}

/// Whether `items` is closed: non-empty cover and equal to its closure.
///
/// Note that this is closedness irrespective of a support threshold; a
/// *closed frequent* item set additionally needs support ≥ minsupp.
/// The support check and the cover run on a [`BitCover`] (popcount
/// kernels); use [`is_closed_with`] to amortise its construction.
pub fn is_closed(db: &RecodedDatabase, items: &ItemSet) -> bool {
    is_closed_with(db, &BitCover::from_database(db), items)
}

/// [`is_closed`] against a prebuilt [`BitCover`].
pub fn is_closed_with(db: &RecodedDatabase, bits: &BitCover, items: &ItemSet) -> bool {
    bits.support(items) > 0 && &closure_with(db, bits, items) == items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RecodedDatabase {
        // a=0 b=1 c=2 d=3 e=4 — the paper Table 1 example database
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn closure_of_single_items() {
        let db = db();
        // {b} is contained in t1,t3,t4,t5,t6; intersection = {b}
        assert_eq!(closure(&db, &ItemSet::from([1])), ItemSet::from([1]));
        // {e} in t2,t7,t8; intersection {d,e} ∩ ... t2={a,d,e},t7={d,e},t8={c,d,e} → {d,e}
        assert_eq!(closure(&db, &ItemSet::from([4])), ItemSet::from([3, 4]));
    }

    #[test]
    fn closure_is_extensive_and_idempotent() {
        let db = db();
        for items in [
            ItemSet::from([0]),
            ItemSet::from([1, 2]),
            ItemSet::from([0, 3]),
            ItemSet::from([2, 3, 4]),
        ] {
            let c = closure(&db, &items);
            assert!(items.is_subset_of(&c), "extensive");
            assert_eq!(closure(&db, &c), c, "idempotent");
        }
    }

    #[test]
    fn closure_of_uncovered_set_is_item_base() {
        let db = db();
        // {b,e} never co-occurs
        let c = closure(&db, &ItemSet::from([1, 4]));
        assert_eq!(c, ItemSet::from([0, 1, 2, 3, 4]));
    }

    #[test]
    fn is_closed_examples() {
        let db = db();
        assert!(is_closed(&db, &ItemSet::from([1, 2]))); // {b,c}
        assert!(!is_closed(&db, &ItemSet::from([4]))); // {e} → {d,e}
        assert!(is_closed(&db, &ItemSet::from([3, 4]))); // {d,e}
        assert!(!is_closed(&db, &ItemSet::from([1, 4]))); // empty cover
    }

    #[test]
    fn closure_with_bits_matches_scan() {
        let db = db();
        let bits = BitCover::from_database(&db);
        let mut sets: Vec<ItemSet> = vec![ItemSet::empty()];
        for i in 0..5u32 {
            sets.push(ItemSet::from([i]));
            for j in 0..5u32 {
                sets.push(ItemSet::from([i, j]));
            }
        }
        sets.push(ItemSet::from([1, 4])); // empty cover
        for s in &sets {
            assert_eq!(closure_with(&db, &bits, s), closure(&db, s), "{s}");
            assert_eq!(
                is_closed_with(&db, &bits, s),
                db.support(s) > 0 && &closure(&db, s) == s,
                "{s}"
            );
        }
        // empty database: closure of anything is the full item base
        let empty = RecodedDatabase::from_dense(vec![], 3);
        let ebits = BitCover::from_database(&empty);
        assert_eq!(
            closure_with(&empty, &ebits, &ItemSet::empty()),
            closure(&empty, &ItemSet::empty())
        );
    }

    #[test]
    fn closure_monotone() {
        let db = db();
        let small = ItemSet::from([2]);
        let large = ItemSet::from([2, 3]);
        let cs = closure(&db, &small);
        let cl = closure(&db, &large);
        assert!(cs.is_subset_of(&cl));
    }

    #[test]
    fn empty_set_closure() {
        let db = db();
        // intersection of ALL transactions is empty here
        assert_eq!(closure(&db, &ItemSet::empty()), ItemSet::empty());
        // a database where all transactions share an item
        let db2 = RecodedDatabase::from_dense(vec![vec![0, 1], vec![0, 2]], 3);
        assert_eq!(closure(&db2, &ItemSet::empty()), ItemSet::from([0]));
    }
}

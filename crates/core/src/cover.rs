//! Covers, supports, and the vertical (tid-list) representation.

use crate::{itemset::ItemSet, recode::RecodedDatabase, Item, Tid};

/// The cover `K_T(I)` of an item set: ascending indices of the transactions
/// that contain it (paper §2.1).
pub fn cover(transactions: &[ItemSet], items: &ItemSet) -> Vec<Tid> {
    transactions
        .iter()
        .enumerate()
        .filter(|(_, t)| items.is_subset_of(t))
        .map(|(k, _)| k as Tid)
        .collect()
}

/// The support `s_T(I)` of an item set: the size of its cover.
pub fn support(transactions: &[ItemSet], items: &ItemSet) -> u32 {
    transactions
        .iter()
        .filter(|t| items.is_subset_of(t))
        .count() as u32
}

/// Vertical database representation: for each item, the ascending list of
/// transaction indices containing it (paper §2.2 / §3.1.1).
///
/// This is the core data structure of the list-based Carpenter variant.
#[derive(Clone, Debug)]
pub struct TidLists {
    lists: Vec<Vec<Tid>>,
    num_transactions: u32,
}

impl TidLists {
    /// Builds the vertical representation of a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        let mut lists: Vec<Vec<Tid>> = (0..db.num_items())
            .map(|i| Vec::with_capacity(db.item_supports()[i as usize] as usize))
            .collect();
        for (tid, t) in db.transactions().iter().enumerate() {
            for &i in t.iter() {
                lists[i as usize].push(tid as Tid);
            }
        }
        TidLists {
            lists,
            num_transactions: db.num_transactions() as u32,
        }
    }

    /// The tid list of one item.
    pub fn list(&self, item: Item) -> &[Tid] {
        &self.lists[item as usize]
    }

    /// Number of items.
    pub fn num_items(&self) -> u32 {
        self.lists.len() as u32
    }

    /// Number of transactions of the underlying database.
    pub fn num_transactions(&self) -> u32 {
        self.num_transactions
    }

    /// Support of a single item.
    pub fn item_support(&self, item: Item) -> u32 {
        self.lists[item as usize].len() as u32
    }

    /// Number of transactions with index `>= tid` that contain `item`
    /// (the remaining-occurrence counter of paper §3.1.1).
    pub fn remaining(&self, item: Item, tid: Tid) -> u32 {
        let list = &self.lists[item as usize];
        (list.len() - list.partition_point(|&t| t < tid)) as u32
    }

    /// The cover of an item set, computed by intersecting tid lists.
    pub fn cover(&self, items: &ItemSet) -> Vec<Tid> {
        let mut iter = items.iter();
        let Some(first) = iter.next() else {
            return (0..self.num_transactions).collect();
        };
        let mut acc: Vec<Tid> = self.lists[first as usize].clone();
        let mut buf: Vec<Tid> = Vec::with_capacity(acc.len());
        for item in iter {
            crate::itemset::intersect_into(&acc, &self.lists[item as usize], &mut buf);
            std::mem::swap(&mut acc, &mut buf);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Support of an item set via tid-list intersection.
    pub fn support(&self, items: &ItemSet) -> u32 {
        self.cover(items).len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TransactionDatabase;
    use crate::order::{ItemOrder, TransactionOrder};

    fn paper_recoded() -> RecodedDatabase {
        let db = TransactionDatabase::from_named(&[
            vec!["a", "b", "c"],
            vec!["a", "d", "e"],
            vec!["b", "c", "d"],
            vec!["a", "b", "c", "d"],
            vec!["b", "c"],
            vec!["a", "b", "d"],
            vec!["d", "e"],
            vec!["c", "d", "e"],
        ]);
        RecodedDatabase::prepare(&db, 1, ItemOrder::Original, TransactionOrder::Original)
    }

    #[test]
    fn cover_of_slice_db() {
        let txs = vec![
            ItemSet::from([0, 1]),
            ItemSet::from([1, 2]),
            ItemSet::from([0, 1, 2]),
        ];
        assert_eq!(cover(&txs, &ItemSet::from([1])), vec![0, 1, 2]);
        assert_eq!(cover(&txs, &ItemSet::from([0, 2])), vec![2]);
        assert_eq!(support(&txs, &ItemSet::from([0, 1])), 2);
        assert_eq!(cover(&txs, &ItemSet::empty()), vec![0, 1, 2]);
    }

    #[test]
    fn tid_lists_match_scan() {
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        assert_eq!(v.num_items(), 5);
        assert_eq!(v.num_transactions(), 8);
        // d = code 3: t2,t3,t4,t6,t7,t8 → tids 1,2,3,5,6,7
        assert_eq!(v.list(3), &[1, 2, 3, 5, 6, 7]);
        assert_eq!(v.item_support(3), 6);
        let bc = ItemSet::from([1, 2]);
        assert_eq!(v.cover(&bc), vec![0, 2, 3, 4]);
        assert_eq!(v.support(&bc), db.support(&bc));
    }

    #[test]
    fn empty_set_cover_is_all_tids() {
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        assert_eq!(v.cover(&ItemSet::empty()).len(), 8);
    }

    #[test]
    fn remaining_counts_match_paper_matrix() {
        // Paper Table 1: matrix entries count transactions t_j, j >= k,
        // containing item i. remaining(i, k) gives exactly that value.
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        // m[t1][a] = 4, m[t2][a] = 3, m[t4][a] = 2, m[t6][a] = 1
        assert_eq!(v.remaining(0, 0), 4);
        assert_eq!(v.remaining(0, 1), 3);
        assert_eq!(v.remaining(0, 3), 2);
        assert_eq!(v.remaining(0, 5), 1);
        assert_eq!(v.remaining(0, 6), 0);
        // m[t2][e] = 3, m[t7][e] = 2, m[t8][e] = 1
        assert_eq!(v.remaining(4, 1), 3);
        assert_eq!(v.remaining(4, 6), 2);
        assert_eq!(v.remaining(4, 7), 1);
    }

    #[test]
    fn disjoint_cover_short_circuits() {
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        // {a,e} appears only in t2 (tid 1)
        assert_eq!(v.cover(&ItemSet::from([0, 4])), vec![1]);
        // {b,e} never co-occur... check: b in t1,t3,t4,t5,t6; e in t2,t7,t8
        assert!(v.cover(&ItemSet::from([1, 4])).is_empty());
    }
}

//! Covers, supports, and the vertical (tid-list) representation.
//!
//! Two vertical representations live here: [`TidLists`] (sorted `u32`
//! lists, the scalar reference) and [`BitCover`] (packed bit rows over the
//! transposed [`BitMatrix`], where support counting is word-AND + popcount
//! instead of a per-transaction subset scan).

use crate::{itemset::ItemSet, matrix::BitMatrix, recode::RecodedDatabase, Item, Tid};

/// The cover `K_T(I)` of an item set: ascending indices of the transactions
/// that contain it (paper §2.1).
pub fn cover(transactions: &[ItemSet], items: &ItemSet) -> Vec<Tid> {
    transactions
        .iter()
        .enumerate()
        .filter(|(_, t)| items.is_subset_of(t))
        .map(|(k, _)| k as Tid)
        .collect()
}

/// The support `s_T(I)` of an item set: the size of its cover.
pub fn support(transactions: &[ItemSet], items: &ItemSet) -> u32 {
    transactions
        .iter()
        .filter(|t| items.is_subset_of(t))
        .count() as u32
}

/// Vertical database representation: for each item, the ascending list of
/// transaction indices containing it (paper §2.2 / §3.1.1).
///
/// This is the core data structure of the list-based Carpenter variant.
#[derive(Clone, Debug)]
pub struct TidLists {
    lists: Vec<Vec<Tid>>,
    num_transactions: u32,
}

impl TidLists {
    /// Builds the vertical representation of a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        let mut lists: Vec<Vec<Tid>> = (0..db.num_items())
            .map(|i| Vec::with_capacity(db.item_supports()[i as usize] as usize))
            .collect();
        for (tid, t) in db.transactions().iter().enumerate() {
            for &i in t.iter() {
                lists[i as usize].push(tid as Tid);
            }
        }
        TidLists {
            lists,
            num_transactions: db.num_transactions() as u32,
        }
    }

    /// The tid list of one item.
    pub fn list(&self, item: Item) -> &[Tid] {
        &self.lists[item as usize]
    }

    /// Number of items.
    pub fn num_items(&self) -> u32 {
        self.lists.len() as u32
    }

    /// Number of transactions of the underlying database.
    pub fn num_transactions(&self) -> u32 {
        self.num_transactions
    }

    /// Support of a single item.
    pub fn item_support(&self, item: Item) -> u32 {
        self.lists[item as usize].len() as u32
    }

    /// Number of transactions with index `>= tid` that contain `item`
    /// (the remaining-occurrence counter of paper §3.1.1).
    pub fn remaining(&self, item: Item, tid: Tid) -> u32 {
        let list = &self.lists[item as usize];
        (list.len() - list.partition_point(|&t| t < tid)) as u32
    }

    /// The cover of an item set, computed by intersecting tid lists.
    pub fn cover(&self, items: &ItemSet) -> Vec<Tid> {
        let mut iter = items.iter();
        let Some(first) = iter.next() else {
            return (0..self.num_transactions).collect();
        };
        let mut acc: Vec<Tid> = self.lists[first as usize].clone();
        let mut buf: Vec<Tid> = Vec::with_capacity(acc.len());
        for item in iter {
            crate::itemset::intersect_into(&acc, &self.lists[item as usize], &mut buf);
            std::mem::swap(&mut acc, &mut buf);
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Support of an item set via tid-list intersection.
    pub fn support(&self, items: &ItemSet) -> u32 {
        self.cover(items).len() as u32
    }
}

/// Dense vertical representation: the transposed membership matrix, one
/// packed bit row (tid set) per item.
///
/// Support of an item set is the popcount of the AND of its rows — exact,
/// because each transaction is exactly one bit, so the popcount of the AND
/// *is* the cover size. One row costs `num_transactions / 8` bytes against
/// `4 × support` for a tid list, so this representation is smaller as well
/// as faster whenever the fill rate exceeds `1/32`.
#[derive(Clone, Debug)]
pub struct BitCover {
    rows: BitMatrix,
    num_transactions: u32,
}

impl BitCover {
    /// Builds the dense vertical representation of a recoded database.
    pub fn from_database(db: &RecodedDatabase) -> Self {
        BitCover {
            rows: BitMatrix::from_database_transposed(db),
            num_transactions: db.num_transactions() as u32,
        }
    }

    /// Number of items.
    pub fn num_items(&self) -> u32 {
        self.rows.rows() as u32
    }

    /// Number of transactions of the underlying database.
    pub fn num_transactions(&self) -> u32 {
        self.num_transactions
    }

    /// Support of a single item (one row popcount).
    pub fn item_support(&self, item: Item) -> u32 {
        self.rows.row_count(item as usize)
    }

    /// Support of an item set: AND its rows, popcount the result, with an
    /// early exit when the running intersection empties.
    pub fn support(&self, items: &ItemSet) -> u32 {
        let mut iter = items.iter();
        let Some(first) = iter.next() else {
            return self.num_transactions;
        };
        let mut acc: Vec<u64> = self.rows.row_words(first as usize).words().to_vec();
        let mut live = self.rows.row_count(first as usize);
        for item in iter {
            live = 0;
            for (a, &b) in acc
                .iter_mut()
                .zip(self.rows.row_words(item as usize).words())
            {
                *a &= b;
                live += a.count_ones();
            }
            if live == 0 {
                break;
            }
        }
        live
    }

    /// The cover of an item set as ascending tids (AND + bit iteration).
    pub fn cover(&self, items: &ItemSet) -> Vec<Tid> {
        let mut iter = items.iter();
        let Some(first) = iter.next() else {
            return (0..self.num_transactions).collect();
        };
        let mut acc: Vec<u64> = self.rows.row_words(first as usize).words().to_vec();
        for item in iter {
            for (a, &b) in acc
                .iter_mut()
                .zip(self.rows.row_words(item as usize).words())
            {
                *a &= b;
            }
        }
        let mut out = Vec::new();
        for (wi, &word) in acc.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push(wi as Tid * 64 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        out
    }

    /// Approximate heap size in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TransactionDatabase;
    use crate::order::{ItemOrder, TransactionOrder};

    fn paper_recoded() -> RecodedDatabase {
        let db = TransactionDatabase::from_named(&[
            vec!["a", "b", "c"],
            vec!["a", "d", "e"],
            vec!["b", "c", "d"],
            vec!["a", "b", "c", "d"],
            vec!["b", "c"],
            vec!["a", "b", "d"],
            vec!["d", "e"],
            vec!["c", "d", "e"],
        ]);
        RecodedDatabase::prepare(&db, 1, ItemOrder::Original, TransactionOrder::Original)
    }

    #[test]
    fn cover_of_slice_db() {
        let txs = vec![
            ItemSet::from([0, 1]),
            ItemSet::from([1, 2]),
            ItemSet::from([0, 1, 2]),
        ];
        assert_eq!(cover(&txs, &ItemSet::from([1])), vec![0, 1, 2]);
        assert_eq!(cover(&txs, &ItemSet::from([0, 2])), vec![2]);
        assert_eq!(support(&txs, &ItemSet::from([0, 1])), 2);
        assert_eq!(cover(&txs, &ItemSet::empty()), vec![0, 1, 2]);
    }

    #[test]
    fn tid_lists_match_scan() {
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        assert_eq!(v.num_items(), 5);
        assert_eq!(v.num_transactions(), 8);
        // d = code 3: t2,t3,t4,t6,t7,t8 → tids 1,2,3,5,6,7
        assert_eq!(v.list(3), &[1, 2, 3, 5, 6, 7]);
        assert_eq!(v.item_support(3), 6);
        let bc = ItemSet::from([1, 2]);
        assert_eq!(v.cover(&bc), vec![0, 2, 3, 4]);
        assert_eq!(v.support(&bc), db.support(&bc));
    }

    #[test]
    fn empty_set_cover_is_all_tids() {
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        assert_eq!(v.cover(&ItemSet::empty()).len(), 8);
    }

    #[test]
    fn remaining_counts_match_paper_matrix() {
        // Paper Table 1: matrix entries count transactions t_j, j >= k,
        // containing item i. remaining(i, k) gives exactly that value.
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        // m[t1][a] = 4, m[t2][a] = 3, m[t4][a] = 2, m[t6][a] = 1
        assert_eq!(v.remaining(0, 0), 4);
        assert_eq!(v.remaining(0, 1), 3);
        assert_eq!(v.remaining(0, 3), 2);
        assert_eq!(v.remaining(0, 5), 1);
        assert_eq!(v.remaining(0, 6), 0);
        // m[t2][e] = 3, m[t7][e] = 2, m[t8][e] = 1
        assert_eq!(v.remaining(4, 1), 3);
        assert_eq!(v.remaining(4, 6), 2);
        assert_eq!(v.remaining(4, 7), 1);
    }

    #[test]
    fn bit_cover_matches_tid_lists() {
        let db = paper_recoded();
        let lists = TidLists::from_database(&db);
        let bits = BitCover::from_database(&db);
        assert_eq!(bits.num_items(), 5);
        assert_eq!(bits.num_transactions(), 8);
        for i in 0..5u32 {
            assert_eq!(bits.item_support(i), lists.item_support(i));
        }
        // all pairs and a few larger sets
        for i in 0..5u32 {
            for j in 0..5u32 {
                let s = ItemSet::from([i, j]);
                assert_eq!(bits.support(&s), lists.support(&s), "{s}");
                assert_eq!(bits.cover(&s), lists.cover(&s), "{s}");
            }
        }
        let abc = ItemSet::from([0, 1, 2]);
        assert_eq!(bits.support(&abc), lists.support(&abc));
        assert_eq!(
            bits.cover(&ItemSet::empty()),
            lists.cover(&ItemSet::empty())
        );
        assert_eq!(bits.support(&ItemSet::empty()), 8);
        assert!(bits.heap_bytes() > 0);
    }

    #[test]
    fn disjoint_cover_short_circuits() {
        let db = paper_recoded();
        let v = TidLists::from_database(&db);
        // {a,e} appears only in t2 (tid 1)
        assert_eq!(v.cover(&ItemSet::from([0, 4])), vec![1]);
        // {b,e} never co-occur... check: b in t1,t3,t4,t5,t6; e in t2,t7,t8
        assert!(v.cover(&ItemSet::from([1, 4])).is_empty());
    }
}

//! Maximal frequent item sets (paper §2.3).
//!
//! A frequent item set is *maximal* if no proper superset is frequent.
//! Every maximal frequent set is closed (adding any item would drop the
//! support below the threshold, so in particular below the set's own
//! support), and the maximal frequent sets are exactly the
//! inclusion-maximal elements of the closed frequent collection — so they
//! can be extracted from any miner's output without touching the database.

use crate::miner::MiningResult;
use std::collections::HashMap;

/// Filters a complete closed-set mining result down to the maximal
/// frequent item sets.
pub fn maximal_from_closed(closed: &MiningResult) -> MiningResult {
    // group indices by a representative item to limit superset candidates
    let mut by_item: HashMap<u32, Vec<usize>> = HashMap::new();
    for (idx, s) in closed.sets.iter().enumerate() {
        for item in s.items.iter() {
            by_item.entry(item).or_default().push(idx);
        }
    }
    let mut result = MiningResult::new();
    'outer: for (idx, s) in closed.sets.iter().enumerate() {
        // choose the item with the shortest posting list
        let postings = s
            .items
            .iter()
            .filter_map(|i| by_item.get(&i))
            .min_by_key(|p| p.len());
        if let Some(postings) = postings {
            for &other in postings {
                if other != idx {
                    let o = &closed.sets[other];
                    if o.items.len() > s.items.len() && s.items.is_subset_of(&o.items) {
                        continue 'outer; // a frequent (closed) superset exists
                    }
                }
            }
        }
        result.sets.push(s.clone());
    }
    result.canonicalize();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::itemset::ItemSet;
    use crate::recode::RecodedDatabase;
    use crate::reference::{mine_all_frequent, mine_reference};

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    /// Brute-force maximal sets from the all-frequent enumeration.
    fn maximal_reference(db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let all = mine_all_frequent(db, minsupp);
        let mut result = MiningResult::new();
        for f in &all.sets {
            let has_super = all
                .sets
                .iter()
                .any(|g| g.items.len() > f.items.len() && f.items.is_subset_of(&g.items));
            if !has_super {
                result.sets.push(f.clone());
            }
        }
        result.canonicalize();
        result
    }

    #[test]
    fn matches_brute_force_on_paper_example() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let closed = mine_reference(&db, minsupp);
            let got = maximal_from_closed(&closed);
            let want = maximal_reference(&db, minsupp);
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn union_of_maximal_subsets_is_all_frequent() {
        // paper §2.3: the union of all subsets of the maximal sets is the
        // set of all frequent item sets
        let db = paper_db();
        let minsupp = 3;
        let maximal = maximal_from_closed(&mine_reference(&db, minsupp));
        let all = mine_all_frequent(&db, minsupp);
        for f in &all.sets {
            assert!(
                maximal.sets.iter().any(|m| f.items.is_subset_of(&m.items)),
                "{:?} not covered by any maximal set",
                f.items
            );
        }
    }

    #[test]
    fn maximal_sets_are_incomparable() {
        let db = paper_db();
        let maximal = maximal_from_closed(&mine_reference(&db, 2));
        for (i, a) in maximal.sets.iter().enumerate() {
            for (j, b) in maximal.sets.iter().enumerate() {
                if i != j {
                    assert!(!a.items.is_subset_of(&b.items), "{:?} ⊆ {:?}", a, b);
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(maximal_from_closed(&MiningResult::new()).is_empty());
        let one: MiningResult = [crate::miner::FoundSet::new(ItemSet::from([1, 2]), 3)]
            .into_iter()
            .collect();
        assert_eq!(maximal_from_closed(&one), one.canonicalized());
    }
}

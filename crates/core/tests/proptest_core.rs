//! Property tests for the core substrate: item set algebra, closure and
//! Galois laws, representation consistency, and recoding invariants.

use fim_core::{
    closure, cover, galois, itemset, BitMatrix, ItemOrder, ItemSet, RecodedDatabase,
    SuffixCountMatrix, TidLists, TransactionDatabase, TransactionOrder,
};
use proptest::collection::vec;
use proptest::prelude::*;

fn itemset_strategy(max_item: u32) -> impl Strategy<Value = ItemSet> {
    vec(0..max_item, 0..max_item as usize).prop_map(ItemSet::new)
}

fn db_strategy() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=10).prop_flat_map(|m| {
        vec(vec(0..m, 0..=m as usize), 1..12)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn itemset_lattice_laws(a in itemset_strategy(12), b in itemset_strategy(12), c in itemset_strategy(12)) {
        // commutativity
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&b), b.union(&a));
        // associativity
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        // absorption
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.union(&b)), a.clone());
        // difference partition
        let inter = a.intersect(&b);
        let diff = a.minus(&b);
        prop_assert_eq!(inter.union(&diff), a.clone());
        prop_assert!(inter.intersect(&diff).is_empty());
        // subset coherence
        prop_assert!(inter.is_subset_of(&a) && inter.is_subset_of(&b));
        prop_assert!(a.is_subset_of(&a.union(&b)));
    }

    #[test]
    fn closure_operator_laws(db in db_strategy(), raw in vec(0u32..10, 0..6)) {
        let items = ItemSet::new(raw.into_iter().filter(|&i| i < db.num_items()).collect());
        let c = closure(&db, &items);
        // extensive
        prop_assert!(items.is_subset_of(&c));
        // idempotent
        prop_assert_eq!(closure(&db, &c), c.clone());
        // monotone (against a random subset of items)
        let sub: ItemSet = items.iter().step_by(2).collect();
        prop_assert!(closure(&db, &sub).is_subset_of(&closure(&db, &items))
            || db.support(&sub) == 0 // both closures degenerate to item base
        );
    }

    #[test]
    fn galois_adjunction(db in db_strategy(), raw in vec(0u32..10, 0..5), tids_raw in vec(0u32..12, 0..5)) {
        let items = ItemSet::new(raw.into_iter().filter(|&i| i < db.num_items()).collect());
        let mut tids: Vec<u32> = tids_raw
            .into_iter()
            .filter(|&t| (t as usize) < db.num_transactions())
            .collect();
        tids.sort_unstable();
        tids.dedup();
        // K ⊆ f(I) ⇔ I ⊆ g(K)
        let fi = galois::f(&db, &items);
        let lhs = tids.iter().all(|t| fi.contains(t));
        let rhs = items.is_subset_of(&galois::g(&db, &tids));
        prop_assert_eq!(lhs, rhs);
        // closure operators on both sides
        let ci = galois::item_closure(&db, &items);
        prop_assert!(items.is_subset_of(&ci));
        prop_assert_eq!(galois::item_closure(&db, &ci), ci);
        let ck = galois::tid_closure(&db, &tids);
        prop_assert!(tids.iter().all(|t| ck.contains(t)));
        prop_assert_eq!(galois::tid_closure(&db, &ck), ck);
    }

    #[test]
    fn representations_agree(db in db_strategy(), raw in vec(0u32..10, 1..4)) {
        let items = ItemSet::new(raw.into_iter().filter(|&i| i < db.num_items()).collect());
        let lists = TidLists::from_database(&db);
        let bits = BitMatrix::from_database(&db);
        let matrix = SuffixCountMatrix::from_database(&db);
        // support via scan == support via tid lists
        prop_assert_eq!(db.support(&items), lists.support(&items));
        // per-item, per-transaction membership agreement
        for tid in 0..db.num_transactions() {
            for i in 0..db.num_items() {
                let in_tx = db.transaction(tid as u32).contains(&i);
                prop_assert_eq!(bits.get(tid, i as usize), in_tx);
                prop_assert_eq!(matrix.contains(tid as u32, i), in_tx);
            }
        }
        // suffix counts equal remaining() from tid lists
        for tid in 0..db.num_transactions() as u32 {
            for i in 0..db.num_items() {
                if matrix.contains(tid, i) {
                    prop_assert_eq!(matrix.entry(tid, i), lists.remaining(i, tid));
                }
            }
        }
    }

    #[test]
    fn recoding_preserves_supports(
        txs in vec(vec(0u32..9, 0..9usize), 1..10),
        minsupp in 1u32..4,
        io_pick in 0usize..3,
        to_pick in 0usize..3,
    ) {
        let db = TransactionDatabase::from_codes(txs);
        let io = ItemOrder::ALL[io_pick];
        let to = TransactionOrder::ALL[to_pick];
        let recoded = RecodedDatabase::prepare(&db, minsupp, io, to);
        // every surviving item's support is preserved and >= minsupp
        for new_code in 0..recoded.num_items() {
            let old = recoded.recode().item_to_old[new_code as usize];
            let raw_supp = db.support(&ItemSet::from([old]));
            prop_assert_eq!(raw_supp, recoded.item_supports()[new_code as usize]);
            prop_assert!(raw_supp >= minsupp);
        }
        // arbitrary non-empty set supports survive encode/decode (the empty
        // set is excluded: recoding drops empty transactions, which changes
        // only the empty set's support and is irrelevant to mining)
        let probe = ItemSet::new((0..db.num_items() as u32).step_by(2).collect());
        if !probe.is_empty() {
            if let Some(enc) = recoded.recode().encode_items(&probe) {
                prop_assert_eq!(recoded.support(&enc), db.support(&probe));
            }
        }
    }

    #[test]
    fn cover_is_sorted_and_support_consistent(db in db_strategy(), raw in vec(0u32..10, 0..4)) {
        let items = ItemSet::new(raw.into_iter().filter(|&i| i < db.num_items()).collect());
        let txs: Vec<ItemSet> = db
            .transactions()
            .iter()
            .map(|t| ItemSet::from_sorted(t.to_vec()))
            .collect();
        let cov = cover(&txs, &items);
        prop_assert!(cov.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(cov.len() as u32, db.support(&items));
        for &tid in &cov {
            prop_assert!(itemset::is_subset(items.as_slice(), db.transaction(tid)));
        }
    }
}

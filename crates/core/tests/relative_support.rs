//! The relative minimum-support entry point (paper §2.1: the absolute and
//! relative definitions are equivalent).

use fim_core::reference::ReferenceMiner;
use fim_core::{mine_closed, mine_closed_relative, TransactionDatabase};

fn db() -> TransactionDatabase {
    TransactionDatabase::from_named(&[
        vec!["a", "b", "c"],
        vec!["a", "d", "e"],
        vec!["b", "c", "d"],
        vec!["a", "b", "c", "d"],
        vec!["b", "c"],
        vec!["a", "b", "d"],
        vec!["d", "e"],
        vec!["c", "d", "e"],
    ])
}

#[test]
fn fraction_maps_to_ceiling_absolute() {
    let db = db();
    // 8 transactions: 0.25 → 2, 0.3 → ceil(2.4) = 3, 0.375 → 3
    for (frac, abs) in [(0.25, 2u32), (0.3, 3), (0.375, 3), (1.0, 8)] {
        let rel = mine_closed_relative(&db, frac, &ReferenceMiner);
        let direct = mine_closed(&db, abs, &ReferenceMiner);
        assert_eq!(rel, direct, "fraction {frac} vs absolute {abs}");
    }
}

#[test]
fn zero_fraction_clamps_to_one() {
    let db = db();
    assert_eq!(
        mine_closed_relative(&db, 0.0, &ReferenceMiner),
        mine_closed(&db, 1, &ReferenceMiner)
    );
}

#[test]
#[should_panic(expected = "relative support")]
fn fraction_above_one_rejected() {
    let _ = mine_closed_relative(&db(), 1.5, &ReferenceMiner);
}

#[test]
fn empty_database_is_fine() {
    let db = TransactionDatabase::new();
    assert!(mine_closed_relative(&db, 0.5, &ReferenceMiner).is_empty());
}

//! `fim` — command-line closed frequent item set miner.
//!
//! ```text
//! fim mine  --algo ista --supp 8 --in data.fimi [--out result.txt]
//! fim gen   --preset yeast --scale 0.1 --seed 1 --out data.fimi
//! fim rules --supp 4 --conf 0.8 --in data.fimi
//! fim stats --in data.fimi
//! fim algos
//! ```
//!
//! See `fim help` for the full option list, including the resource budgets
//! (`--timeout`, `--max-nodes`, `--max-sets`, `--degrade`) and stream
//! checkpointing (`--checkpoint`, `--resume`). Failures map to documented
//! exit codes (see [`errors`]). The argument parser is hand-rolled to keep
//! the dependency set minimal.

use fim_core::{
    apply_constraints_owned, mine_closed_with_orders, Budget, ClosedMiner, ConstraintSet, Density,
    ItemCatalog, ItemOrder, MineOutcome, MiningResult, Representation, TransactionDatabase,
    TransactionOrder, TripReason,
};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

mod args;
mod errors;
mod observe;
mod registry;

use args::Args;
use errors::{usage, CliError};
use fim_obs::{
    ConstraintMetrics, Counter, Counters, MetricsReport, PassMetrics, ProgressSnapshot,
    ShardMetrics, SpillMetrics,
};
use observe::ObsArgs;
use registry::{all_miner_names, miner_by_name};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fim: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = argv.split_first() else {
        print_help();
        return Ok(());
    };
    let args = Args::parse(rest)?;
    // the deterministic fault layer (crash-consistency testing): armed
    // from the flag and/or the env var, a single relaxed atomic load when
    // disarmed
    fim_core::fault::arm_from_env().map_err(usage)?;
    if let Some(specs) = args.get("inject-fault") {
        for part in specs.split(',').filter(|p| !p.trim().is_empty()) {
            fim_core::fault::arm_str(part.trim()).map_err(usage)?;
        }
    }
    match command.as_str() {
        "mine" => cmd_mine(&args),
        "gen" => cmd_gen(&args),
        "rules" => cmd_rules(&args),
        "stats" => cmd_stats(&args),
        "compare" => cmd_compare(&args),
        "trace-export" => cmd_trace_export(&args),
        "algos" => {
            for name in all_miner_names() {
                println!("{name}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(usage(format!("unknown command '{other}'"))),
    }
}

fn load_db(args: &Args) -> Result<TransactionDatabase, CliError> {
    match args.get("in") {
        Some("-") | None => fim_io::read_fimi(std::io::stdin().lock()),
        Some(path) => fim_io::read_fimi_path(path),
    }
    .map_err(CliError::from)
}

fn item_order(args: &Args) -> Result<ItemOrder, CliError> {
    match args.get("item-order").unwrap_or("asc") {
        "asc" => Ok(ItemOrder::AscendingFrequency),
        "desc" => Ok(ItemOrder::DescendingFrequency),
        "orig" => Ok(ItemOrder::Original),
        other => Err(usage(format!("bad --item-order '{other}' (asc|desc|orig)"))),
    }
}

fn tx_order(args: &Args) -> Result<TransactionOrder, CliError> {
    match args.get("tx-order").unwrap_or("asc") {
        "asc" => Ok(TransactionOrder::AscendingSize),
        "desc" => Ok(TransactionOrder::DescendingSize),
        "orig" => Ok(TransactionOrder::Original),
        other => Err(usage(format!("bad --tx-order '{other}' (asc|desc|orig)"))),
    }
}

/// Builds the mining [`Budget`] from `--timeout` / `--max-nodes` /
/// `--max-sets` / `--degrade`. Unlimited when none are given.
fn budget_from(args: &Args) -> Result<Budget, CliError> {
    let mut budget = Budget::unlimited();
    if let Some(t) = args.get("timeout") {
        let secs: f64 = t
            .parse()
            .map_err(|e| usage(format!("bad --timeout: {e}")))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(usage("--timeout must be a non-negative number of seconds"));
        }
        budget = budget.with_timeout(Duration::from_secs_f64(secs));
    }
    if let Some(n) = args.get("max-nodes") {
        let nodes: usize = n
            .parse()
            .map_err(|e| usage(format!("bad --max-nodes: {e}")))?;
        budget = budget.with_max_nodes(nodes);
    }
    if let Some(n) = args.get("max-sets") {
        let sets: usize = n
            .parse()
            .map_err(|e| usage(format!("bad --max-sets: {e}")))?;
        budget = budget.with_max_closed_sets(sets);
    }
    if args.flag("degrade") {
        if budget.max_nodes.is_none() {
            return Err(usage("--degrade needs --max-nodes (it raises the support threshold until the tree fits the node budget)"));
        }
        budget = budget.with_degradation();
    }
    Ok(budget)
}

/// Splits a `-bitset`/`-gallop` registry suffix off an algorithm name, so
/// `--algo eclat-bitset` reaches the same code path as
/// `--algo eclat --rep bitset` (including `--stats`/`--metrics`).
fn split_rep_suffix(algo: &str) -> (&str, Option<Representation>) {
    match algo {
        "ista-bitset" => ("ista", Some(Representation::Bitset)),
        "eclat-bitset" => ("eclat", Some(Representation::Bitset)),
        "eclat-gallop" => ("eclat", Some(Representation::Gallop)),
        "declat-bitset" => ("declat", Some(Representation::Bitset)),
        "declat-gallop" => ("declat", Some(Representation::Gallop)),
        "carpenter-lists-bitset" => ("carpenter-lists", Some(Representation::Bitset)),
        "carpenter-lists-gallop" => ("carpenter-lists", Some(Representation::Gallop)),
        other => (other, None),
    }
}

fn cmd_mine(args: &Args) -> Result<(), CliError> {
    let raw_algo = args.get("algo").unwrap_or("ista");
    let (algo, name_rep) = split_rep_suffix(raw_algo);
    if args.flag("out-of-core") {
        // the raw name, so 'ista-bitset --out-of-core' is rejected
        return cmd_mine_oocore(args, raw_algo);
    }
    for f in ["mem-budget", "spill-dir", "resume-spill", "io-retries"] {
        if args.get(f).is_some() {
            return Err(usage(format!("--{f} needs --out-of-core")));
        }
    }
    if args.get("checkpoint").is_some() || args.get("resume").is_some() {
        // the raw name, so 'ista-bitset --checkpoint' is rejected rather
        // than silently streamed through the scalar kernel
        return cmd_mine_stream(args, raw_algo);
    }
    let is_ista = matches!(algo, "ista" | "ista-par" | "ista-noprune" | "ista-plain");
    for f in ["no-coalesce", "no-compact", "no-patricia"] {
        if args.flag(f) && !is_ista {
            return Err(usage(format!("--{f} is only available for ista variants")));
        }
    }
    // `--threads N` selects the data-parallel miner with N shards
    // (0 = one per available core); only meaningful for ista variants
    let threads: Option<usize> = match args.get("threads") {
        None => None,
        Some(t) => Some(
            t.parse()
                .map_err(|e| usage(format!("bad --threads: {e}")))?,
        ),
    };
    if threads.is_some() && !is_ista {
        return Err(usage(format!("--threads is not available for '{algo}'")));
    }
    let budget = budget_from(args)?;
    if budget.degrade && (!is_ista || threads.is_some() || algo == "ista-par") {
        return Err(usage(
            "--degrade is only available for the sequential ista miner",
        ));
    }
    let plain = algo == "ista-plain" || args.flag("no-patricia");
    if plain && (threads.is_some() || algo == "ista-par") {
        return Err(usage(
            "the uncompressed tree (--no-patricia / ista-plain) is sequential only",
        ));
    }
    // `--rep auto` needs the database shape, so the load happens before
    // miner construction (every flag-validation error above still fires
    // without touching the input)
    let db = load_db(args)?;
    let supp = resolve_supp(args, &db)?;
    let rep = resolve_rep(args, name_rep, &db, algo, threads)?;
    let ista_config = fim_ista::IstaConfig {
        policy: if algo == "ista-noprune" || args.flag("no-prune") {
            fim_ista::PrunePolicy::Never
        } else {
            fim_ista::IstaConfig::default().policy
        },
        coalesce: !args.flag("no-coalesce"),
        compact: !args.flag("no-compact"),
        patricia: !plain,
        rep: rep.unwrap_or_default(),
    };
    let miner: Box<dyn ClosedMiner> = if is_ista {
        match (threads, algo) {
            (Some(t), _) => parallel_ista(t, ista_config),
            (None, "ista-par") => parallel_ista(0, ista_config),
            (None, _) => Box::new(fim_ista::IstaMiner::with_config(ista_config)),
        }
    } else if let Some(r) = rep {
        if args.flag("no-prune") {
            return Err(usage(format!("--no-prune is not available for '{algo}'")));
        }
        // resolve_rep only lets a kernel selection through for the
        // kernelized enumeration miners
        match algo {
            "eclat" => Box::new(fim_baseline::EclatMiner::with_rep(r)),
            "declat" => Box::new(fim_baseline::DEclatMiner::with_rep(r)),
            "carpenter-lists" => Box::new(fim_carpenter::CarpenterListMiner::with_rep(r)),
            other => return Err(usage(format!("--rep is not available for '{other}'"))),
        }
    } else {
        // `--no-prune` maps the pruned algorithms to their ablation variants
        let resolved = match (algo, args.flag("no-prune")) {
            ("carpenter-table", true) => "carpenter-table-noprune",
            (other, true) => {
                return Err(usage(format!("--no-prune is not available for '{other}'")));
            }
            (other, false) => other,
        };
        miner_by_name(resolved)?
    };
    let obs_args = ObsArgs::from_args(args)?;
    let constraints = constraints_from(args, &db)?;
    if let Some(cs) = &constraints {
        if args.flag("maximal") {
            return Err(usage(
                "--maximal cannot be combined with constraint flags (maximal sets are \
                 derived from the unconstrained closed family)",
            ));
        }
        let push = !args.flag("no-push");
        if obs_args.any() {
            if !budget.is_unlimited() {
                return Err(usage(
                    "--stats/--metrics/--progress/--profile cannot be combined with budget flags",
                ));
            }
            if threads.is_some() || algo == "ista-par" {
                return Err(usage(
                    "constraint flags with --stats/--metrics run the sequential miners only",
                ));
            }
            return mine_constrained_observed(
                args,
                &db,
                supp,
                algo,
                ista_config,
                rep,
                &obs_args,
                cs,
                push,
            );
        }
        if !budget.is_unlimited() {
            return mine_governed(args, &db, supp, miner.as_ref(), &budget, Some((cs, push)));
        }
        let start = std::time::Instant::now();
        let result = fim_core::mine_closed_constrained(
            &db,
            supp,
            miner.as_ref(),
            cs,
            item_order(args)?,
            tx_order(args)?,
            push,
        );
        let elapsed = start.elapsed();
        write_out(args, |w| {
            fim_io::write_results(&result, &db, w).map_err(CliError::from)
        })?;
        eprintln!(
            "{}: {} closed sets at supp >= {supp} under [{cs}] in {:.3}s",
            miner.name(),
            result.len(),
            elapsed.as_secs_f64()
        );
        return Ok(());
    }
    if obs_args.any() {
        if !budget.is_unlimited() {
            return Err(usage(
                "--stats/--metrics/--progress/--profile cannot be combined with budget flags",
            ));
        }
        return mine_observed(args, &db, supp, algo, threads, ista_config, rep, &obs_args);
    }
    if !budget.is_unlimited() {
        return mine_governed(args, &db, supp, miner.as_ref(), &budget, None);
    }
    let start = std::time::Instant::now();
    let mut result = mine_closed_with_orders(
        &db,
        supp,
        miner.as_ref(),
        item_order(args)?,
        tx_order(args)?,
    );
    let kind = if args.flag("maximal") {
        result = fim_core::maximal_from_closed(&result);
        "maximal"
    } else {
        "closed"
    };
    let elapsed = start.elapsed();
    write_out(args, |w| {
        fim_io::write_results(&result, &db, w).map_err(CliError::from)
    })?;
    eprintln!(
        "{}: {} {kind} sets at supp >= {supp} in {:.3}s",
        miner.name(),
        result.len(),
        elapsed.as_secs_f64()
    );
    Ok(())
}

/// Resolves `--rep auto|scalar|bitset|gallop` (and the `-bitset`/`-gallop`
/// algorithm-name suffixes, which are the same selection spelled as a
/// registry name) to a tid-set kernel.
///
/// `auto` applies [`Representation::select`] to the density of the raw
/// database — the same rule the library's `AutoMiner` applies after
/// recoding; the pre-recode estimate is used here so the choice is made
/// once, before any miner runs. `None` means no selection was made and the
/// algorithm's default (scalar) kernel runs.
///
/// The kernelized algorithms are the sequential ista variants, eclat,
/// declat, and carpenter-lists; everything else rejects an explicit
/// selection. Note that ista has no galloping kernel (its epoch probe is
/// already O(1)) and the plain layout has no bitset kernel: those
/// combinations run the scalar path, as documented on
/// [`fim_ista::IstaConfig`].
fn resolve_rep(
    args: &Args,
    name_rep: Option<Representation>,
    db: &TransactionDatabase,
    algo: &str,
    threads: Option<usize>,
) -> Result<Option<Representation>, CliError> {
    let flag = match args.get("rep") {
        None => None,
        Some("auto") => {
            let rows = db.num_transactions();
            let cols = db.num_items();
            let ones = db.total_occurrences() as u64;
            let cells = rows as u64 * cols as u64;
            let density = Density {
                rows,
                cols,
                ones,
                fill: if cells == 0 {
                    0.0
                } else {
                    ones as f64 / cells as f64
                },
                avg_row_len: if rows == 0 {
                    0.0
                } else {
                    ones as f64 / rows as f64
                },
            };
            Some(Representation::select(&density))
        }
        Some(s) => Some(
            s.parse::<Representation>()
                .map_err(|e| usage(format!("bad --rep: {e} (or auto)")))?,
        ),
    };
    if let (Some(f), Some(n)) = (flag, name_rep) {
        if f != n {
            return Err(usage(format!(
                "--rep {f} conflicts with the '-{n}' algorithm-name suffix"
            )));
        }
    }
    let rep = flag.or(name_rep);
    if rep.is_some() {
        let kernelized = matches!(
            algo,
            "ista" | "ista-noprune" | "ista-plain" | "eclat" | "declat" | "carpenter-lists"
        );
        if threads.is_some() || algo == "ista-par" {
            return Err(usage(
                "--rep is not available for the parallel miner (the shards run the scalar kernel)",
            ));
        }
        if !kernelized {
            return Err(usage(format!(
                "--rep is not available for '{algo}' (kernelized: ista, eclat, declat, carpenter-lists)"
            )));
        }
    }
    Ok(rep)
}

/// The constraint flags of `fim mine`. Kept in one place so the batch,
/// governed, and observed paths (and the forbidden-flag lists of the
/// streaming paths) agree on the spelling.
const CONSTRAINT_FLAGS: [&str; 6] = [
    "include", "exclude", "min-size", "max-size", "min-area", "no-push",
];

/// Builds the [`ConstraintSet`] from `--include`/`--exclude` (comma-
/// separated item names, resolved against the database catalog) and
/// `--min-size`/`--max-size`/`--min-area`. Returns `None` when no
/// constraint flag is present. Unknown item names and contradictory
/// combinations (e.g. `--min-size 5 --max-size 3`, or an item both
/// included and excluded) are usage errors — exit code 2.
fn constraints_from(
    args: &Args,
    db: &TransactionDatabase,
) -> Result<Option<ConstraintSet>, CliError> {
    let any = ["include", "exclude", "min-size", "max-size", "min-area"]
        .iter()
        .any(|f| args.get(f).is_some());
    if !any {
        if args.flag("no-push") {
            return Err(usage("--no-push needs at least one constraint flag"));
        }
        return Ok(None);
    }
    let resolve = |key: &str| -> Result<fim_core::ItemSet, CliError> {
        let mut items = Vec::new();
        if let Some(spec) = args.get(key) {
            for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let code = db
                    .catalog()
                    .code(name)
                    .ok_or_else(|| usage(format!("--{key}: unknown item '{name}'")))?;
                items.push(code);
            }
        }
        Ok(fim_core::ItemSet::new(items))
    };
    let mut cs = ConstraintSet::none();
    cs.include = resolve("include")?;
    cs.exclude = resolve("exclude")?;
    cs.min_size = args.parse_or("min-size", 0)?;
    cs.max_size = match args.get("max-size") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|e| usage(format!("bad --max-size: {e}")))?,
        ),
    };
    cs.min_area = args.parse_or("min-area", 0)?;
    cs.validate().map_err(usage)?;
    Ok(Some(cs))
}

/// Resolves absolute `--supp N` or relative `--supp-rel F` (fraction of
/// transactions) against the loaded database.
fn resolve_supp(args: &Args, db: &TransactionDatabase) -> Result<u32, CliError> {
    resolve_supp_n(args, db.num_transactions() as u64)
}

/// [`resolve_supp`] against a bare transaction count — for the out-of-core
/// path, where the count comes from the streaming pass 1 and no database
/// is ever materialized.
fn resolve_supp_n(args: &Args, transactions: u64) -> Result<u32, CliError> {
    match (args.get("supp"), args.get("supp-rel")) {
        (Some(_), Some(_)) => Err(usage("--supp and --supp-rel are exclusive")),
        (Some(s), None) => s.parse().map_err(|e| usage(format!("bad --supp: {e}"))),
        (None, Some(f)) => {
            let frac: f64 = f
                .parse()
                .map_err(|e| usage(format!("bad --supp-rel: {e}")))?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(usage("--supp-rel must be in [0, 1]"));
            }
            Ok(((frac * transactions as f64).ceil() as u32).max(1))
        }
        (None, None) => Err(usage("missing --supp (or --supp-rel)")),
    }
}

/// The governed batch path: mines under the budget, writes whatever result
/// (complete, degraded, or the exact partial of the processed prefix) and
/// exits 4 when a budget tripped.
fn mine_governed(
    args: &Args,
    db: &TransactionDatabase,
    supp: u32,
    miner: &dyn ClosedMiner,
    budget: &Budget,
    constraints: Option<(&ConstraintSet, bool)>,
) -> Result<(), CliError> {
    let start = std::time::Instant::now();
    let outcome = match constraints {
        None => fim_core::mine_closed_governed(
            db,
            supp,
            miner,
            budget,
            item_order(args)?,
            tx_order(args)?,
        ),
        Some((cs, push)) => fim_core::mine_closed_constrained_governed(
            db,
            supp,
            miner,
            cs,
            budget,
            item_order(args)?,
            tx_order(args)?,
            push,
        ),
    };
    let elapsed = start.elapsed();
    let maximal = args.flag("maximal");
    let kind = if maximal { "maximal" } else { "closed" };
    match outcome {
        MineOutcome::Complete {
            mut result,
            degradation,
        } => {
            if maximal {
                result = fim_core::maximal_from_closed(&result);
            }
            write_out(args, |w| {
                fim_io::write_results(&result, db, w).map_err(CliError::from)
            })?;
            if let Some(d) = degradation {
                eprintln!(
                    "fim: degraded to fit the node budget: effective supp {} (requested {}, {} steps)",
                    d.effective_minsupp, d.requested_minsupp, d.steps
                );
            }
            eprintln!(
                "{}: {} {kind} sets at supp >= {supp} in {:.3}s",
                miner.name(),
                result.len(),
                elapsed.as_secs_f64()
            );
            Ok(())
        }
        MineOutcome::Interrupted {
            mut partial,
            reason,
            progress,
        } => {
            if maximal {
                partial = fim_core::maximal_from_closed(&partial);
            }
            write_out(args, |w| {
                fim_io::write_results(&partial, db, w).map_err(CliError::from)
            })?;
            Err(CliError::Budget(format!(
                "{} interrupted ({reason}) at progress {progress}; wrote {} {kind} sets with exact supports",
                miner.name(),
                partial.len()
            )))
        }
    }
}

/// The streaming path behind `--checkpoint` / `--resume`: feeds the input
/// through an [`fim_ista::IstaStream`] one transaction at a time, so a
/// budget trip leaves a resumable checkpoint and an exact prefix answer.
fn cmd_mine_stream(args: &Args, algo: &str) -> Result<(), CliError> {
    if algo != "ista" {
        return Err(usage(format!(
            "--checkpoint/--resume stream through the cumulative ista miner, not '{algo}'"
        )));
    }
    for f in [
        "threads",
        "stats",
        "profile",
        "no-prune",
        "no-coalesce",
        "no-compact",
        "no-patricia",
        "rep",
        "degrade",
        "item-order",
        "tx-order",
        "supp-rel",
    ]
    .into_iter()
    .chain(CONSTRAINT_FLAGS)
    {
        if args.get(f).is_some() {
            return Err(usage(format!(
                "--{f} is not available with --checkpoint/--resume"
            )));
        }
    }
    let supp: u32 = args.require_parsed("supp")?;
    let budget = budget_from(args)?;
    let obs_args = ObsArgs::from_args(args)?;
    let mut obs = obs_args.build()?;
    let (mut stream, mut catalog) = match args.get("resume") {
        Some(path) => {
            let file = std::fs::File::open(path)
                .map_err(|e| CliError::Other(format!("cannot open --resume {path}: {e}")))?;
            let mut reader = std::io::BufReader::new(file);
            // re-wrap corruption so the message names the offending file
            // (the reader only knows the byte offset)
            let (s, c) = fim_io::read_stream_checkpoint(&mut reader).map_err(|e| match e {
                fim_core::FimError::Corrupt(msg) => {
                    CliError::from(fim_core::FimError::Corrupt(format!("{path}: {msg}")))
                }
                other => CliError::from(other),
            })?;
            eprintln!(
                "fim: resumed from {path} at {} transactions",
                s.transactions_processed()
            );
            (s, c)
        }
        None => (fim_ista::IstaStream::new(0), ItemCatalog::new()),
    };
    let skip = stream.transactions_processed();
    let db = load_db(args)?;
    // the stream counts only non-empty transactions; skip on the same basis
    // so resuming against the same input continues exactly where it stopped
    let total = db.transactions().iter().filter(|t| !t.is_empty()).count() as u64;
    let start = std::time::Instant::now();
    let mut gov = budget.start();
    gov.add_processed(u64::from(skip));
    let mut tripped: Option<TripReason> = None;
    let mut seen = 0u32;
    obs.span_enter("stream");
    for t in db.transactions() {
        if t.is_empty() {
            continue;
        }
        seen += 1;
        if seen <= skip {
            continue;
        }
        if let Some(reason) = gov.check(stream.node_count(), stream.memory_stats().approx_bytes, 0)
        {
            tripped = Some(reason);
            obs.instant("budget_trip", &[("processed", u64::from(seen - 1))]);
            break;
        }
        let coded: Result<Vec<u32>, CliError> = t
            .iter()
            .map(|item| {
                db.catalog()
                    .name(item)
                    .map(|name| catalog.intern(name))
                    .ok_or_else(|| CliError::Other(format!("item code {item} has no name")))
            })
            .collect();
        let coded = coded?;
        stream.grow_universe(catalog.len() as u32);
        stream.push(&coded);
        gov.add_processed(1);
        obs.tick(&ProgressSnapshot {
            processed: u64::from(stream.transactions_processed()),
            // on a resumed run the stream total is not knowable from this
            // input alone, so the heartbeat reports no ETA
            total: (skip == 0).then_some(total),
            pending: 0,
            peak_nodes: stream.node_count() as u64,
            sets: 0,
        });
    }
    obs.span_exit();
    let processed = stream.transactions_processed();
    if let Some(path) = args.get("checkpoint") {
        write_checkpoint_atomically(&mut stream, &catalog, path)?;
        obs.instant("checkpoint", &[("transactions", u64::from(processed))]);
    }
    obs.span_enter("report");
    let mut result = stream.closed_sets(supp);
    let kind = if args.flag("maximal") {
        result = fim_core::maximal_from_closed(&result);
        "maximal"
    } else {
        "closed"
    };
    write_out(args, |w| {
        fim_io::write_results_named(&result, &catalog, w).map_err(CliError::from)
    })?;
    obs.span_exit();
    obs.finish(&ProgressSnapshot {
        processed: u64::from(processed),
        total: (skip == 0 && tripped.is_none()).then_some(total),
        pending: 0,
        peak_nodes: stream.node_count() as u64,
        sets: result.len() as u64,
    });
    {
        let mem = stream.memory_stats();
        let mut report = MetricsReport::new(
            "ista-stream",
            supp,
            start.elapsed().as_secs_f64(),
            result.len() as u64,
            u64::from(processed),
        );
        // the stream never prunes, so the arena high-water is the peak
        report.tree = Some(mem.to_metrics(mem.total_slots));
        report.counters = *stream.counters();
        obs_args.finalize(&mut obs, &mut report);
        obs_args.emit_metrics(&report)?;
        let exit = tripped.map_or_else(|| "ok".to_string(), |r| r.to_string());
        obs_args.emit_ledger(args, &report, &obs, &exit)?;
    }
    match tripped {
        None => {
            eprintln!(
                "ista-stream: {} {kind} sets at supp >= {supp} over {processed} transactions in {:.3}s",
                result.len(),
                start.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Some(reason) => {
            let resume_hint = match args.get("checkpoint") {
                Some(path) => format!("; checkpoint written, resume with --resume {path}"),
                None => String::new(),
            };
            Err(CliError::Budget(format!(
                "stream interrupted ({reason}) at progress {processed}/{total}; wrote the exact {kind} sets of the processed prefix{resume_hint}"
            )))
        }
    }
}

/// Writes the stream checkpoint to `path` via a sibling temporary file,
/// an fsync, and an atomic rename (plus a parent-directory fsync), so a
/// crash — or power loss — mid-write never clobbers the previous good
/// checkpoint with a torn or unsynced one. Threads the `checkpoint.write`
/// fault point between flush and fsync, where a torn write would land.
fn write_checkpoint_atomically(
    stream: &mut fim_ista::IstaStream,
    catalog: &ItemCatalog,
    path: &str,
) -> Result<(), CliError> {
    use fim_core::fault::{self, points};
    let tmp = format!("{path}.tmp");
    let io_err = |what: &str, e: std::io::Error| CliError::Other(format!("{what} {tmp}: {e}"));
    let file = std::fs::File::create(&tmp).map_err(|e| io_err("cannot create", e))?;
    let mut w = std::io::BufWriter::new(file);
    fim_io::write_stream_checkpoint(stream, catalog, &mut w)?;
    w.flush().map_err(|e| io_err("cannot flush", e))?;
    let file = w
        .into_inner()
        .map_err(|e| CliError::Other(format!("cannot flush {tmp}: {e}")))?;
    fault::hit_write(points::CHECKPOINT_WRITE, || {
        let half = file.metadata().map(|m| m.len() / 2).unwrap_or(0);
        let _ = file.set_len(half);
    })?;
    file.sync_all().map_err(|e| io_err("cannot sync", e))?;
    drop(file);
    std::fs::rename(&tmp, path)
        .map_err(|e| CliError::Other(format!("cannot rename {tmp} to {path}: {e}")))?;
    fim_ista::sync_parent_dir(std::path::Path::new(path)).map_err(CliError::from)
}

/// The out-of-core batch path behind `--out-of-core`: two streaming passes
/// over the input file (item counts, then an on-the-fly recode into
/// contiguous shards sized to the `--mem-budget` byte target), each shard
/// mined and spilled to `--spill-dir` as a validated snapshot, the spills
/// merge-reduced pairwise from disk. The output is identical to an
/// in-memory run over the same file; spill files are written atomically
/// and removed on every exit path, budget trips included — except a
/// disk-full trip, which keeps the CRC-protected `MANIFEST` journal and
/// its verified spills so `--resume-spill` can continue the run without
/// re-mining completed shards. `--io-retries N` retries transient I/O
/// failures around each spill write before giving up.
fn cmd_mine_oocore(args: &Args, algo: &str) -> Result<(), CliError> {
    if algo != "ista" {
        return Err(usage(format!(
            "--out-of-core streams through the shard-spill ista pipeline, not '{algo}'"
        )));
    }
    for f in [
        "threads",
        "checkpoint",
        "resume",
        "rep",
        "no-patricia",
        "tx-order",
        "degrade",
    ]
    .into_iter()
    .chain(CONSTRAINT_FLAGS)
    {
        if args.get(f).is_some() {
            return Err(usage(format!("--{f} is not available with --out-of-core")));
        }
    }
    let input = match args.get("in") {
        Some("-") | None => {
            return Err(usage(
                "--out-of-core needs a real --in file (the pipeline reads it twice)",
            ))
        }
        Some(p) => p,
    };
    let mem_budget: u64 = args.require_parsed("mem-budget")?;
    let spill_dir = args.require("spill-dir")?;
    let io_retries: u32 = args.parse_or("io-retries", 0)?;
    let resume = args.flag("resume-spill");
    let budget = budget_from(args)?;
    let obs_args = ObsArgs::from_args(args)?;
    if obs_args.any() && !budget.is_unlimited() {
        return Err(usage(
            "--stats/--metrics cannot be combined with budget flags",
        ));
    }
    let limits = fim_io::FimiLimits::default();
    let counts = fim_io::count_fimi_path(input, &limits)?;
    let supp = resolve_supp_n(args, counts.transactions)?;
    let mut config = fim_ista::OutOfCoreConfig::new(mem_budget, spill_dir);
    if args.flag("no-prune") {
        config.policy = fim_ista::PrunePolicy::Never;
    }
    config.coalesce = !args.flag("no-coalesce");
    config.compact = !args.flag("no-compact");
    config.retry = fim_core::fault::RetryPolicy::with_retries(io_retries);
    let mut obs = obs_args.build_with_spill(Some(std::path::Path::new(spill_dir)))?;
    let start = std::time::Instant::now();
    let run = fim_io::mine_fimi_with_counts_opts(
        input,
        &limits,
        counts,
        supp,
        item_order(args)?,
        config,
        &budget,
        resume,
        &mut obs,
    )?;
    let elapsed = start.elapsed();
    let maximal = args.flag("maximal");
    let kind = if maximal { "maximal" } else { "closed" };
    let stats = run.stats;
    let shard_note = format!(
        "{} shards ({} spilled, {} merge passes)",
        stats.shards, stats.spilled, stats.merge_passes
    );
    let transactions = run.transactions;
    // both arms share the report shape; only sets/exit status differ
    let emit_observability =
        |result: &MiningResult, obs: &mut fim_obs::Obs, exit: &str| -> Result<(), CliError> {
            obs.finish(&ProgressSnapshot {
                processed: transactions,
                total: Some(transactions),
                pending: 0,
                peak_nodes: stats.memory.total_slots as u64,
                sets: result.len() as u64,
            });
            let mut report = MetricsReport::new(
                "ista-oocore",
                supp,
                elapsed.as_secs_f64(),
                result.len() as u64,
                transactions,
            );
            // no cross-shard peak is tracked; the reduced tree's arena
            // high-water (total slots) is the closest honest figure
            report.tree = Some(stats.memory.to_metrics(stats.memory.total_slots));
            report.shards = Some(ShardMetrics {
                shards: stats.shards,
                recovered: 0,
            });
            report.spill = Some(SpillMetrics::from_counters(&stats.counters));
            report.counters = stats.counters;
            obs_args.finalize(obs, &mut report);
            obs_args.emit_metrics(&report)?;
            obs_args.emit_profile(obs)?;
            obs_args.emit_ledger(args, &report, obs, exit)?;
            if args.flag("stats") {
                eprintln!(
                    "ista-oocore: {} spills, {} faults injected, {} retries",
                    stats.counters.get(Counter::ShardsSpilled),
                    stats.counters.get(Counter::FaultsInjected),
                    stats.counters.get(Counter::RetriesAttempted)
                );
            }
            Ok(())
        };
    match run.outcome {
        MineOutcome::Complete { mut result, .. } => {
            if maximal {
                result = fim_core::maximal_from_closed(&result);
            }
            write_out(args, |w| {
                fim_io::write_results_named(&result, &run.catalog, w).map_err(CliError::from)
            })?;
            emit_observability(&result, &mut obs, "ok")?;
            eprintln!(
                "ista-oocore: {} {kind} sets at supp >= {supp} over {shard_note} in {:.3}s",
                result.len(),
                elapsed.as_secs_f64()
            );
            Ok(())
        }
        MineOutcome::Interrupted {
            mut partial,
            reason,
            progress,
        } => {
            if maximal {
                partial = fim_core::maximal_from_closed(&partial);
            }
            write_out(args, |w| {
                fim_io::write_results_named(&partial, &run.catalog, w).map_err(CliError::from)
            })?;
            emit_observability(&partial, &mut obs, &reason.to_string())?;
            // a disk-full trip is the one interruption that keeps its spill
            // state: the manifest and verified spills stay behind so a
            // `--resume-spill` run can pick up without re-mining them
            let disposition = if reason == TripReason::DiskFull {
                format!(
                    "a resumable manifest was left in {spill_dir}; free space and re-run \
                     with --resume-spill to continue without re-mining completed shards"
                )
            } else {
                "spill files were cleaned up".to_owned()
            };
            Err(CliError::Budget(format!(
                "ista-oocore interrupted ({reason}) at progress {progress} over {shard_note}; \
                 wrote {} {kind} sets with exact supports; {disposition}",
                partial.len()
            )))
        }
    }
}

/// Builds a data-parallel ista miner carrying the sequential hot-path
/// toggles over to its shards.
fn parallel_ista(threads: usize, cfg: fim_ista::IstaConfig) -> Box<dyn ClosedMiner> {
    Box::new(fim_ista::ParallelIstaMiner::with_config(
        fim_ista::ParallelConfig {
            threads,
            policy: cfg.policy,
            coalesce: cfg.coalesce,
            compact: cfg.compact,
        },
    ))
}

/// The observed mining path behind `--stats`/`--metrics`/`--progress`/
/// `--profile`: mines with an [`fim_obs::Obs`] handle threaded through the
/// miner where supported (sequential ista records phase spans and emits
/// the heartbeat from inside the transaction loop; the parallel, Carpenter
/// and Eclat miners report their counters at the end), then writes one
/// schema-versioned metrics JSON document and, if requested, a
/// collapsed-stack profile.
#[allow(clippy::too_many_arguments)]
fn mine_observed(
    args: &Args,
    db: &TransactionDatabase,
    supp: u32,
    algo: &str,
    threads: Option<usize>,
    ista_config: fim_ista::IstaConfig,
    rep: Option<Representation>,
    obs_args: &ObsArgs,
) -> Result<(), CliError> {
    let mut obs = obs_args.build()?;
    let start = std::time::Instant::now();
    obs.span_enter("recode");
    let recoded = fim_core::RecodedDatabase::prepare(db, supp, item_order(args)?, tx_order(args)?);
    obs.span_exit();
    let is_ista = matches!(algo, "ista" | "ista-par" | "ista-noprune" | "ista-plain");
    let parallel = threads.is_some() || algo == "ista-par";
    let mut report = MetricsReport::new("", supp, 0.0, 0, recoded.num_transactions() as u64);
    obs.span_enter("mine");
    // sequential ista drives the heartbeat itself; every other miner gets
    // one final progress line after the fact
    let mut heartbeat_done = false;
    let res = if parallel {
        let miner = fim_ista::ParallelIstaMiner::with_config(fim_ista::ParallelConfig {
            threads: threads.unwrap_or(0),
            policy: ista_config.policy,
            coalesce: ista_config.coalesce,
            compact: ista_config.compact,
        });
        let (res, stats) = miner.mine_with_stats(&recoded, supp);
        report.miner = "ista-par";
        // no cross-shard peak is tracked; the reduced tree's arena
        // high-water (total slots) is the closest honest figure
        report.tree = Some(stats.memory.to_metrics(stats.memory.total_slots));
        report.shards = Some(ShardMetrics {
            shards: stats.shards as u64,
            recovered: stats.shards_recovered as u64,
        });
        report.counters = stats.counters;
        res
    } else if is_ista {
        let miner = fim_ista::IstaMiner::with_config(ista_config);
        let (res, stats) = miner.mine_with_obs(&recoded, supp, &mut obs);
        report.miner = miner.name();
        report.transactions_total = stats.total_transactions as u64;
        report.transactions_distinct = Some(stats.distinct_transactions as u64);
        report.tree = Some(stats.memory.to_metrics(stats.peak_nodes));
        report.passes = Some(PassMetrics {
            prune_passes: stats.prune_passes as u64,
            compactions: stats.compactions as u64,
        });
        report.counters = stats.counters;
        heartbeat_done = true;
        res
    } else {
        let noprune = args.flag("no-prune");
        let kernel_rep = rep.unwrap_or_default();
        let (res, counters) = match (algo, noprune) {
            ("carpenter-lists", false) => {
                let miner = fim_carpenter::CarpenterListMiner::with_rep(kernel_rep);
                report.miner = miner.name();
                miner.mine_with_stats(&recoded, supp)
            }
            ("carpenter-table", false) => {
                report.miner = "carpenter-table";
                fim_carpenter::CarpenterTableMiner::default().mine_with_stats(&recoded, supp)
            }
            ("carpenter-table", true) => {
                report.miner = "carpenter-table-noprune";
                fim_carpenter::CarpenterTableMiner::with_config(
                    fim_carpenter::CarpenterConfig::unpruned(),
                )
                .mine_with_stats(&recoded, supp)
            }
            ("eclat", false) => {
                let miner = fim_baseline::EclatMiner::with_rep(kernel_rep);
                report.miner = miner.name();
                miner.mine_with_stats(&recoded, supp)
            }
            ("declat", false) => {
                let miner = fim_baseline::DEclatMiner::with_rep(kernel_rep);
                report.miner = miner.name();
                miner.mine_with_stats(&recoded, supp)
            }
            (other, _) => {
                return Err(usage(format!(
                    "--stats/--metrics/--progress/--profile are not available for '{other}'"
                )));
            }
        };
        report.counters = counters;
        res
    };
    // the kernel section names the selected representation and its work
    // counters; the parallel miner has no kernel selection and stays scalar
    report.kernel = Some(fim_obs::KernelMetrics::from_counters(
        rep.unwrap_or_default().name(),
        &report.counters,
    ));
    obs.span_exit();
    obs.span_enter("report");
    let mut result = res.decode(recoded.recode());
    result.canonicalize();
    let kind = if args.flag("maximal") {
        result = fim_core::maximal_from_closed(&result);
        "maximal"
    } else {
        "closed"
    };
    write_out(args, |w| {
        fim_io::write_results(&result, db, w).map_err(CliError::from)
    })?;
    obs.span_exit();
    if !heartbeat_done {
        obs.finish(&ProgressSnapshot {
            processed: report.transactions_total,
            total: Some(report.transactions_total),
            pending: 0,
            peak_nodes: report.tree.map_or(0, |t| t.peak_nodes),
            sets: result.len() as u64,
        });
    }
    report.seconds = start.elapsed().as_secs_f64();
    report.sets = result.len() as u64;
    obs_args.finalize(&mut obs, &mut report);
    obs_args.emit_metrics(&report)?;
    obs_args.emit_profile(&obs)?;
    obs_args.emit_ledger(args, &report, &obs, "ok")?;
    eprintln!(
        "{}: {} {kind} sets at supp >= {supp} in {:.3}s",
        report.miner,
        result.len(),
        report.seconds
    );
    Ok(())
}

/// The observed **constrained** mining path: like [`mine_observed`], but
/// the recode projects out the excluded items, the miner runs its pushed
/// search (or the post-filter when `--no-push` asked for the oracle path),
/// and the metrics document gains the `constraint` section (the spec, the
/// pushed/post-filtered disposition, and the `constraint_prunes` counter).
#[allow(clippy::too_many_arguments)]
fn mine_constrained_observed(
    args: &Args,
    db: &TransactionDatabase,
    supp: u32,
    algo: &str,
    ista_config: fim_ista::IstaConfig,
    rep: Option<Representation>,
    obs_args: &ObsArgs,
    cs: &ConstraintSet,
    push: bool,
) -> Result<(), CliError> {
    let mut obs = obs_args.build()?;
    let start = std::time::Instant::now();
    obs.span_enter("recode");
    let recoded = fim_core::RecodedDatabase::prepare_excluding(
        db,
        supp,
        item_order(args)?,
        tx_order(args)?,
        &cs.exclude,
    );
    obs.span_exit();
    let mut report = MetricsReport::new("", supp, 0.0, 0, recoded.num_transactions() as u64);
    // counts the sets a post-filter pass drops, so the pushed and the
    // post-filtered run report through the same counter slot
    fn postfiltered(
        res: MiningResult,
        mut counters: Counters,
        dense: &ConstraintSet,
    ) -> (MiningResult, Counters) {
        let before = res.sets.len();
        let res = apply_constraints_owned(res, dense);
        counters.add(Counter::ConstraintPrunes, (before - res.sets.len()) as u64);
        (res, counters)
    }
    let dense = cs.encode(recoded.recode());
    obs.span_enter("mine");
    let kernel_rep = rep.unwrap_or_default();
    let is_ista = matches!(algo, "ista" | "ista-noprune" | "ista-plain");
    let (res, counters) = match &dense {
        // a must-include item did not survive the frequency threshold (or
        // the exclusion projection): nothing can satisfy, no miner runs
        None => {
            report.miner = miner_by_name(algo)?.name();
            (MiningResult::new(), Counters::new())
        }
        Some(d) if is_ista => {
            let miner = fim_ista::IstaMiner::with_config(ista_config);
            report.miner = miner.name();
            let (res, stats) = if push {
                miner.mine_constrained_with_stats(&recoded, supp, d)
            } else {
                let (res, stats) = miner.mine_with_stats(&recoded, supp);
                (apply_constraints_owned(res, d), stats)
            };
            report.transactions_total = stats.total_transactions as u64;
            report.transactions_distinct = Some(stats.distinct_transactions as u64);
            report.tree = Some(stats.memory.to_metrics(stats.peak_nodes));
            report.passes = Some(PassMetrics {
                prune_passes: stats.prune_passes as u64,
                compactions: stats.compactions as u64,
            });
            (res, stats.counters)
        }
        Some(d) => match algo {
            "carpenter-lists" => {
                let miner = fim_carpenter::CarpenterListMiner::with_rep(kernel_rep);
                report.miner = miner.name();
                if push {
                    miner.mine_constrained_with_stats(&recoded, supp, d)
                } else {
                    let (res, counters) = miner.mine_with_stats(&recoded, supp);
                    postfiltered(res, counters, d)
                }
            }
            "carpenter-table" => {
                report.miner = "carpenter-table";
                let miner = fim_carpenter::CarpenterTableMiner::default();
                if push {
                    miner.mine_constrained_with_stats(&recoded, supp, d)
                } else {
                    let (res, counters) = miner.mine_with_stats(&recoded, supp);
                    postfiltered(res, counters, d)
                }
            }
            "eclat" => {
                let miner = fim_baseline::EclatMiner::with_rep(kernel_rep);
                report.miner = miner.name();
                if push {
                    miner.mine_constrained_with_stats(&recoded, supp, d)
                } else {
                    let (res, counters) = miner.mine_with_stats(&recoded, supp);
                    postfiltered(res, counters, d)
                }
            }
            "declat" => {
                let miner = fim_baseline::DEclatMiner::with_rep(kernel_rep);
                report.miner = miner.name();
                if push {
                    miner.mine_constrained_with_stats(&recoded, supp, d)
                } else {
                    let (res, counters) = miner.mine_with_stats(&recoded, supp);
                    postfiltered(res, counters, d)
                }
            }
            other => {
                return Err(usage(format!(
                    "--stats/--metrics with constraint flags are not available for '{other}'"
                )));
            }
        },
    };
    report.counters = counters;
    let pushed = push
        && matches!(
            algo,
            "ista"
                | "ista-noprune"
                | "ista-plain"
                | "carpenter-lists"
                | "carpenter-table"
                | "eclat"
                | "declat"
        );
    report.constraint = Some(ConstraintMetrics::from_counters(
        cs.to_string(),
        pushed,
        &counters,
    ));
    report.kernel = Some(fim_obs::KernelMetrics::from_counters(
        kernel_rep.name(),
        &report.counters,
    ));
    obs.span_exit();
    obs.span_enter("report");
    let mut result = res.decode(recoded.recode());
    result.canonicalize();
    write_out(args, |w| {
        fim_io::write_results(&result, db, w).map_err(CliError::from)
    })?;
    obs.span_exit();
    obs.finish(&ProgressSnapshot {
        processed: report.transactions_total,
        total: Some(report.transactions_total),
        pending: 0,
        peak_nodes: report.tree.map_or(0, |t| t.peak_nodes),
        sets: result.len() as u64,
    });
    report.seconds = start.elapsed().as_secs_f64();
    report.sets = result.len() as u64;
    obs_args.finalize(&mut obs, &mut report);
    obs_args.emit_metrics(&report)?;
    obs_args.emit_profile(&obs)?;
    obs_args.emit_ledger(args, &report, &obs, "ok")?;
    eprintln!(
        "{}: {} closed sets at supp >= {supp} under [{cs}] in {:.3}s",
        report.miner,
        result.len(),
        report.seconds
    );
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    use fim_synth::Preset;
    let preset = match args.require("preset")? {
        "yeast" => Preset::Yeast,
        "ncbi60" => Preset::Ncbi60,
        "thrombin" => Preset::Thrombin,
        "webview" => Preset::Webview,
        other => return Err(usage(format!("unknown preset '{other}'"))),
    };
    let scale: f64 = args.parse_or("scale", 1.0)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let db = preset.build(scale, seed);
    write_out(args, |w| fim_io::write_fimi(&db, w).map_err(CliError::from))?;
    eprintln!(
        "{}: {} transactions, {} items, {} occurrences",
        preset.name(),
        db.num_transactions(),
        db.num_items(),
        db.total_occurrences()
    );
    Ok(())
}

fn cmd_rules(args: &Args) -> Result<(), CliError> {
    let supp: u32 = args.require_parsed("supp")?;
    let conf: f64 = args.parse_or("conf", 0.6)?;
    let db = load_db(args)?;
    let algo = args.get("algo").unwrap_or("ista");
    let miner = miner_by_name(algo)?;
    let closed = fim_core::mine_closed(&db, supp, miner.as_ref());
    let rules =
        fim_rules::RuleMiner::with_confidence(conf).derive(&closed, db.num_transactions() as u32);
    write_out(args, |w| {
        for r in &rules {
            let fmt_set = |s: &fim_core::ItemSet| -> String {
                s.iter()
                    .map(|i| db.catalog().name(i).unwrap_or("?").to_owned())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            writeln!(
                w,
                "{} -> {}  (supp {}, conf {:.3}, lift {:.3})",
                fmt_set(&r.antecedent),
                fmt_set(&r.consequent),
                r.support,
                r.confidence,
                r.lift
            )
            .map_err(|e| CliError::Other(e.to_string()))?;
        }
        Ok(())
    })?;
    eprintln!("{} rules (supp >= {supp}, conf >= {conf})", rules.len());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    let db = load_db(args)?;
    let freq = db.item_frequencies();
    let nonzero = freq.iter().filter(|&&f| f > 0).count();
    let max_len = db.transactions().iter().map(|t| t.len()).max().unwrap_or(0);
    println!("transactions       {}", db.num_transactions());
    println!("items (catalog)    {}", db.num_items());
    println!("items (occurring)  {nonzero}");
    println!("occurrences        {}", db.total_occurrences());
    println!(
        "avg tx length      {:.2}",
        db.total_occurrences() as f64 / db.num_transactions().max(1) as f64
    );
    println!("max tx length      {max_len}");
    println!(
        "density            {:.5}",
        db.total_occurrences() as f64
            / (db.num_transactions().max(1) * db.num_items().max(1)) as f64
    );
    Ok(())
}

fn write_out<F>(args: &Args, f: F) -> Result<(), CliError>
where
    F: FnOnce(&mut dyn Write) -> Result<(), CliError>,
{
    match args.get("out") {
        Some("-") | None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            f(&mut lock)
        }
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| CliError::Other(e.to_string()))?;
            let mut w = std::io::BufWriter::new(file);
            f(&mut w)
        }
    }
}

fn cmd_compare(args: &Args) -> Result<(), CliError> {
    let base_path = args.require("base")?;
    let new_path = args.require("new")?;
    let defaults = fim_obs::Thresholds::default();
    let thresholds = fim_obs::Thresholds {
        time_pct: args.parse_or("time-tol", defaults.time_pct)?,
        time_floor_secs: args.parse_or("time-floor", defaults.time_floor_secs)?,
        mem_pct: args.parse_or("mem-tol", defaults.mem_pct)?,
        mem_floor_kb: args.parse_or("mem-floor-kb", defaults.mem_floor_kb)?,
        counter_pct: args.parse_or("counter-tol", defaults.counter_pct)?,
    };
    let read = |path: &str| -> Result<String, CliError> {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))
    };
    let base = fim_obs::parse_run_summary(&read(base_path)?)
        .map_err(|e| CliError::Parse(format!("{base_path}: {e}")))?;
    let new = fim_obs::parse_run_summary(&read(new_path)?)
        .map_err(|e| CliError::Parse(format!("{new_path}: {e}")))?;
    let report = fim_obs::compare(&base, &new, &thresholds);
    let io_err = |e: std::io::Error| CliError::Other(e.to_string());
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if args.flag("json") {
        report.write_json(&mut lock).map_err(io_err)?;
    } else {
        report.write_table(&mut lock).map_err(io_err)?;
    }
    drop(lock);
    if report.regressions > 0 {
        return Err(CliError::Other(format!(
            "{} regression(s) vs {base_path}",
            report.regressions
        )));
    }
    Ok(())
}

fn cmd_trace_export(args: &Args) -> Result<(), CliError> {
    let path = args.require("in")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Other(format!("cannot read {path}: {e}")))?;
    write_out(args, |w| {
        fim_obs::export_chrome_object(&text, w)
            .map(|_| ())
            .map_err(|e| CliError::Parse(format!("{path}: {e}")))
    })
}

fn print_help() {
    println!(
        "fim — closed frequent item set mining by intersecting transactions

USAGE:
  fim mine  --supp N | --supp-rel F   [--algo NAME] [--in FILE] [--out FILE]
            [--item-order asc|desc|orig] [--tx-order asc|desc|orig]
            [--maximal] [--no-prune] [--threads N]
            [--include A,B] [--exclude C,D] [--min-size N] [--max-size N]
            [--min-area N] [--no-push]
            [--rep auto|scalar|bitset|gallop]
            [--no-coalesce] [--no-compact] [--no-patricia]
            [--stats] [--metrics PATH|-] [--progress SECS] [--profile FILE]
            [--trace-events FILE] [--sample SECS] [--ledger FILE]
            [--timeout SECS] [--max-nodes N] [--max-sets N] [--degrade]
            [--checkpoint FILE] [--resume FILE]
            [--out-of-core --mem-budget BYTES --spill-dir DIR]
            [--resume-spill] [--io-retries N]
            [--inject-fault POINT:NTH[:io|enospc|partial|panic]]
            (--threads N shards the database over N threads and merges the
             per-shard prefix trees; 0 = one shard per core; ista only)
            (--no-coalesce disables merging identical transactions into
             weighted pairs; --no-compact disables post-prune arena
             compaction; --no-patricia mines on the uncompressed
             one-item-per-node tree instead of the path-compressed
             Patricia layout (equivalent to --algo ista-plain; sequential
             only); all are ista only)
            (constraints: --include/--exclude take comma-separated item
             names; --min-size/--max-size bound the item count and
             --min-area the product support x size of the reported sets.
             Excluded items are projected out of the database before
             mining — the closed sets of that projection, not a per-set
             filter of the full-database answer. Supporting miners (the
             ista variants, carpenter, eclat, declat) push the constraints
             into their search loops; the rest post-filter, as does
             --no-push, which forces the post-filter oracle path for any
             miner. Output is identical either way. Contradictory
             constraints (--min-size above --max-size, more --include
             items than --max-size, an item both included and excluded)
             and unknown item names are usage errors, exit code 2; not
             combinable with --maximal, --checkpoint/--resume, or
             --out-of-core)
            (--rep selects the physical tid-set kernel for the sequential
             ista variants, eclat, declat, and carpenter-lists: scalar
             sorted-list merges (the default), bitset word-AND + popcount,
             gallop exponential-search merges; auto picks by database
             density. Output is identical across kernels; only the work
             profile changes. Spelling the kernel as an algorithm-name
             suffix (e.g. --algo eclat-bitset) is equivalent)
            (observability: --metrics writes one fim-metrics/2 JSON
             document with run counters, tree occupancy, the kernel
             section (selected representation, words ANDed, gallop
             probes, popcounts), and a resources section (peak RSS,
             sampler series, phase histograms) to PATH, or to stderr
             with '-'; --stats is shorthand for --metrics -;
             --progress emits a heartbeat line every SECS seconds on
             stderr (JSON lines when stderr is not a terminal);
             --profile writes phase timings as collapsed stacks for
             flamegraph tools;
             --trace-events streams fim-trace/1 flight-recorder events
             (Chrome trace_event array format — load in Perfetto
             directly, or convert with 'fim trace-export');
             --sample runs a background resource sampler every SECS
             seconds (RSS, arena bytes, spill-dir bytes) feeding the
             metrics resources section;
             --ledger appends one fingerprinted fim-ledger/1 line per
             run (input FNV-1a, config, counters, per-phase self
             times, peak RSS, exit status) for 'fim compare';
             available for the ista variants, carpenter-lists,
             carpenter-table, eclat, and declat; stdout stays clean
             result output throughout)
            (budgets: --timeout caps wall-clock seconds, --max-nodes caps
             live prefix-tree nodes, --max-sets caps emitted sets; on a
             trip the exact sets of the processed prefix are written and
             the exit code is 4. --degrade instead raises the effective
             support until the tree fits --max-nodes; sequential ista only)
            (--checkpoint writes a resumable stream snapshot — atomically,
             on completion or on a budget trip; --resume loads one and
             skips the transactions it already covers; ista only)
            (--out-of-core mines a file larger than memory: two streaming
             passes over --in (item counts, then a recode into contiguous
             shards sized to the --mem-budget byte target), each shard
             mined and spilled to --spill-dir as a validated snapshot,
             the spills merge-reduced pairwise from disk, so peak memory
             tracks one shard's slice plus two trees instead of the whole
             database. Output is identical to an in-memory run; spill
             files are written atomically (fsync before rename, directory
             fsync after) and removed on every exit, budget trips
             included; ista only, needs a real --in file)
            (crash safety: every out-of-core run journals its spills in a
             CRC-protected MANIFEST in --spill-dir. After a crash, kill,
             or disk-full exit, re-running with --resume-spill verifies
             the journal against the input (size + count fingerprint),
             adopts intact completed shards without re-mining them, and
             continues to the identical output; a stale or foreign
             manifest is rejected as corrupt (exit 3). On disk-full the
             exact sets of the processed prefix are still written and the
             manifest is kept (exit 4). --io-retries N absorbs up to N
             transient I/O failures per spill write. --inject-fault arms
             the deterministic fault layer for crash testing: the NTH hit
             of the named point fails with the given kind (default:
             panic); FIM_INJECT_FAULT in the environment is equivalent,
             comma-separated)
  fim gen   --preset yeast|ncbi60|thrombin|webview [--scale X] [--seed N] [--out FILE]
  fim rules --supp N [--conf X] [--algo NAME] [--in FILE] [--out FILE]
  fim stats [--in FILE]
  fim compare --base FILE --new FILE [--json]
            [--time-tol PCT] [--time-floor SECS]
            [--mem-tol PCT] [--mem-floor-kb KB] [--counter-tol PCT]
            (diffs two runs — metrics documents or ledgers, detected by
             content; a ledger compares its most recent entry. A 'sets'
             mismatch or a metric worse than both its percentage
             tolerance and absolute floor is a regression: table or
             --json report on stdout, exit 1 — a CI gate)
  fim trace-export --in TRACE [--out FILE]
            (converts a --trace-events stream to a strict Chrome trace
             JSON object for tools that reject the array format)
  fim algos

FILE defaults to stdin/stdout ('-'). Algorithms: run 'fim algos'.

EXIT CODES:
  0  success
  1  I/O or other failure (including an injected fault of kind io)
  2  usage error (bad command line, unknown fault point)
  3  parse error (malformed input, corrupt checkpoint, foreign manifest)
  4  a resource budget tripped or the disk filled up (partial results
     were still written; disk-full leaves a --resume-spill manifest)"
    );
}

//! `fim` — command-line closed frequent item set miner.
//!
//! ```text
//! fim mine  --algo ista --supp 8 --in data.fimi [--out result.txt]
//! fim gen   --preset yeast --scale 0.1 --seed 1 --out data.fimi
//! fim rules --supp 4 --conf 0.8 --in data.fimi
//! fim stats --in data.fimi
//! fim algos
//! ```
//!
//! See `fim help` for the full option list. The argument parser is
//! hand-rolled to keep the dependency set minimal.

use fim_core::{
    mine_closed_with_orders, ClosedMiner, ItemOrder, TransactionDatabase, TransactionOrder,
};
use std::io::Write;
use std::process::ExitCode;

mod args;
mod registry;

use args::Args;
use registry::{all_miner_names, miner_by_name};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fim: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some((command, rest)) = argv.split_first() else {
        print_help();
        return Ok(());
    };
    let args = Args::parse(rest)?;
    match command.as_str() {
        "mine" => cmd_mine(&args),
        "gen" => cmd_gen(&args),
        "rules" => cmd_rules(&args),
        "stats" => cmd_stats(&args),
        "algos" => {
            for name in all_miner_names() {
                println!("{name}");
            }
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'fim help')")),
    }
}

fn load_db(args: &Args) -> Result<TransactionDatabase, String> {
    match args.get("in") {
        Some("-") | None => fim_io::read_fimi(std::io::stdin().lock()),
        Some(path) => fim_io::read_fimi_path(path),
    }
    .map_err(|e| e.to_string())
}

fn item_order(args: &Args) -> Result<ItemOrder, String> {
    match args.get("item-order").unwrap_or("asc") {
        "asc" => Ok(ItemOrder::AscendingFrequency),
        "desc" => Ok(ItemOrder::DescendingFrequency),
        "orig" => Ok(ItemOrder::Original),
        other => Err(format!("bad --item-order '{other}' (asc|desc|orig)")),
    }
}

fn tx_order(args: &Args) -> Result<TransactionOrder, String> {
    match args.get("tx-order").unwrap_or("asc") {
        "asc" => Ok(TransactionOrder::AscendingSize),
        "desc" => Ok(TransactionOrder::DescendingSize),
        "orig" => Ok(TransactionOrder::Original),
        other => Err(format!("bad --tx-order '{other}' (asc|desc|orig)")),
    }
}

fn cmd_mine(args: &Args) -> Result<(), String> {
    let algo = args.get("algo").unwrap_or("ista");
    let is_ista = matches!(algo, "ista" | "ista-par" | "ista-noprune");
    for f in ["no-coalesce", "no-compact", "stats"] {
        if args.flag(f) && !is_ista {
            return Err(format!("--{f} is only available for ista variants"));
        }
    }
    // `--threads N` selects the data-parallel miner with N shards
    // (0 = one per available core); only meaningful for ista variants
    let threads: Option<usize> = match args.get("threads") {
        None => None,
        Some(t) => Some(t.parse().map_err(|e| format!("bad --threads: {e}"))?),
    };
    if threads.is_some() && !is_ista {
        return Err(format!("--threads is not available for '{algo}'"));
    }
    let ista_config = fim_ista::IstaConfig {
        policy: if algo == "ista-noprune" || args.flag("no-prune") {
            fim_ista::PrunePolicy::Never
        } else {
            fim_ista::IstaConfig::default().policy
        },
        coalesce: !args.flag("no-coalesce"),
        compact: !args.flag("no-compact"),
    };
    let miner: Box<dyn ClosedMiner> = if is_ista {
        match (threads, algo) {
            (Some(t), _) => parallel_ista(t, ista_config),
            (None, "ista-par") => parallel_ista(0, ista_config),
            (None, _) => Box::new(fim_ista::IstaMiner::with_config(ista_config)),
        }
    } else {
        // `--no-prune` maps the pruned algorithms to their ablation variants
        let resolved = match (algo, args.flag("no-prune")) {
            ("carpenter-table", true) => "carpenter-table-noprune",
            (other, true) => {
                return Err(format!("--no-prune is not available for '{other}'"));
            }
            (other, false) => other,
        };
        miner_by_name(resolved)?
    };
    let db = load_db(args)?;
    // absolute --supp N, or relative --supp-rel F (fraction of transactions)
    let supp: u32 = match (args.get("supp"), args.get("supp-rel")) {
        (Some(_), Some(_)) => return Err("--supp and --supp-rel are exclusive".into()),
        (Some(s), None) => s.parse().map_err(|e| format!("bad --supp: {e}"))?,
        (None, Some(f)) => {
            let frac: f64 = f.parse().map_err(|e| format!("bad --supp-rel: {e}"))?;
            if !(0.0..=1.0).contains(&frac) {
                return Err("--supp-rel must be in [0, 1]".into());
            }
            ((frac * db.num_transactions() as f64).ceil() as u32).max(1)
        }
        (None, None) => return Err("missing --supp (or --supp-rel)".into()),
    };
    if args.flag("stats") {
        if threads.is_some() || algo == "ista-par" {
            return Err("--stats requires the sequential ista miner".into());
        }
        return mine_ista_with_stats(args, &db, supp, ista_config);
    }
    let start = std::time::Instant::now();
    let mut result = mine_closed_with_orders(
        &db,
        supp,
        miner.as_ref(),
        item_order(args)?,
        tx_order(args)?,
    );
    let kind = if args.flag("maximal") {
        result = fim_core::maximal_from_closed(&result);
        "maximal"
    } else {
        "closed"
    };
    let elapsed = start.elapsed();
    write_out(args, |w| {
        fim_io::write_results(&result, &db, w).map_err(|e| e.to_string())
    })?;
    eprintln!(
        "{}: {} {kind} sets at supp >= {supp} in {:.3}s",
        miner.name(),
        result.len(),
        elapsed.as_secs_f64()
    );
    Ok(())
}

/// Builds a data-parallel ista miner carrying the sequential hot-path
/// toggles over to its shards.
fn parallel_ista(threads: usize, cfg: fim_ista::IstaConfig) -> Box<dyn ClosedMiner> {
    Box::new(fim_ista::ParallelIstaMiner::with_config(
        fim_ista::ParallelConfig {
            threads,
            policy: cfg.policy,
            coalesce: cfg.coalesce,
            compact: cfg.compact,
        },
    ))
}

/// The `--stats` mining path: sequential ista via
/// [`fim_ista::IstaMiner::mine_with_stats`], reporting run counters and
/// tree memory occupancy on stderr alongside the normal result output.
fn mine_ista_with_stats(
    args: &Args,
    db: &TransactionDatabase,
    supp: u32,
    config: fim_ista::IstaConfig,
) -> Result<(), String> {
    let start = std::time::Instant::now();
    let recoded = fim_core::RecodedDatabase::prepare(db, supp, item_order(args)?, tx_order(args)?);
    let (res, stats) = fim_ista::IstaMiner::with_config(config).mine_with_stats(&recoded, supp);
    let mut result = res.decode(recoded.recode());
    result.canonicalize();
    let kind = if args.flag("maximal") {
        result = fim_core::maximal_from_closed(&result);
        "maximal"
    } else {
        "closed"
    };
    let elapsed = start.elapsed();
    write_out(args, |w| {
        fim_io::write_results(&result, db, w).map_err(|e| e.to_string())
    })?;
    eprintln!(
        "ista: {} {kind} sets at supp >= {supp} in {:.3}s",
        result.len(),
        elapsed.as_secs_f64()
    );
    eprintln!(
        "stats: transactions={} distinct={} prune_passes={} compactions={}",
        stats.total_transactions,
        stats.distinct_transactions,
        stats.prune_passes,
        stats.compactions
    );
    eprintln!(
        "stats: tree live_nodes={} total_slots={} free_slots={} approx_bytes={}",
        stats.memory.live_nodes,
        stats.memory.total_slots,
        stats.memory.free_slots,
        stats.memory.approx_bytes
    );
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    use fim_synth::Preset;
    let preset = match args.require("preset")? {
        "yeast" => Preset::Yeast,
        "ncbi60" => Preset::Ncbi60,
        "thrombin" => Preset::Thrombin,
        "webview" => Preset::Webview,
        other => return Err(format!("unknown preset '{other}'")),
    };
    let scale: f64 = args.parse_or("scale", 1.0)?;
    let seed: u64 = args.parse_or("seed", 1)?;
    let db = preset.build(scale, seed);
    write_out(args, |w| {
        fim_io::write_fimi(&db, w).map_err(|e| e.to_string())
    })?;
    eprintln!(
        "{}: {} transactions, {} items, {} occurrences",
        preset.name(),
        db.num_transactions(),
        db.num_items(),
        db.total_occurrences()
    );
    Ok(())
}

fn cmd_rules(args: &Args) -> Result<(), String> {
    let supp: u32 = args.require_parsed("supp")?;
    let conf: f64 = args.parse_or("conf", 0.6)?;
    let db = load_db(args)?;
    let algo = args.get("algo").unwrap_or("ista");
    let miner = miner_by_name(algo)?;
    let closed = fim_core::mine_closed(&db, supp, miner.as_ref());
    let rules =
        fim_rules::RuleMiner::with_confidence(conf).derive(&closed, db.num_transactions() as u32);
    write_out(args, |w| {
        for r in &rules {
            let fmt_set = |s: &fim_core::ItemSet| -> String {
                s.iter()
                    .map(|i| db.catalog().name(i).unwrap_or("?").to_owned())
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            writeln!(
                w,
                "{} -> {}  (supp {}, conf {:.3}, lift {:.3})",
                fmt_set(&r.antecedent),
                fmt_set(&r.consequent),
                r.support,
                r.confidence,
                r.lift
            )
            .map_err(|e| e.to_string())?;
        }
        Ok(())
    })?;
    eprintln!("{} rules (supp >= {supp}, conf >= {conf})", rules.len());
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let db = load_db(args)?;
    let freq = db.item_frequencies();
    let nonzero = freq.iter().filter(|&&f| f > 0).count();
    let max_len = db.transactions().iter().map(|t| t.len()).max().unwrap_or(0);
    println!("transactions       {}", db.num_transactions());
    println!("items (catalog)    {}", db.num_items());
    println!("items (occurring)  {nonzero}");
    println!("occurrences        {}", db.total_occurrences());
    println!(
        "avg tx length      {:.2}",
        db.total_occurrences() as f64 / db.num_transactions().max(1) as f64
    );
    println!("max tx length      {max_len}");
    println!(
        "density            {:.5}",
        db.total_occurrences() as f64
            / (db.num_transactions().max(1) * db.num_items().max(1)) as f64
    );
    Ok(())
}

fn write_out<F>(args: &Args, f: F) -> Result<(), String>
where
    F: FnOnce(&mut dyn Write) -> Result<(), String>,
{
    match args.get("out") {
        Some("-") | None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            f(&mut lock)
        }
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
            let mut w = std::io::BufWriter::new(file);
            f(&mut w)
        }
    }
}

fn print_help() {
    println!(
        "fim — closed frequent item set mining by intersecting transactions

USAGE:
  fim mine  --supp N | --supp-rel F   [--algo NAME] [--in FILE] [--out FILE]
            [--item-order asc|desc|orig] [--tx-order asc|desc|orig]
            [--maximal] [--no-prune] [--threads N]
            [--no-coalesce] [--no-compact] [--stats]
            (--threads N shards the database over N threads and merges the
             per-shard prefix trees; 0 = one shard per core; ista only)
            (--no-coalesce disables merging identical transactions into
             weighted pairs; --no-compact disables post-prune arena
             compaction; --stats prints run counters and tree memory
             occupancy on stderr; all three are ista only)
  fim gen   --preset yeast|ncbi60|thrombin|webview [--scale X] [--seed N] [--out FILE]
  fim rules --supp N [--conf X] [--algo NAME] [--in FILE] [--out FILE]
  fim stats [--in FILE]
  fim algos

FILE defaults to stdin/stdout ('-'). Algorithms: run 'fim algos'."
    );
}

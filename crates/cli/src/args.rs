//! Minimal `--key value` argument parser.

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed `--key value` pairs.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs; bare `--flag` (followed by another flag
    /// or end of input) gets the value `"true"`.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}' (expected --key)"));
            };
            if key.is_empty() {
                return Err("empty flag '--'".into());
            }
            let value = match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    v.clone()
                }
                _ => "true".to_owned(),
            };
            values.insert(key.to_owned(), value);
            i += 1;
        }
        Ok(Args { values })
    }

    /// Raw value lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required raw value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Required value parsed to `T`.
    pub fn require_parsed<T: FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.require(key)?
            .parse()
            .map_err(|e| format!("bad --{key}: {e}"))
    }

    /// Optional value parsed to `T` with a default.
    pub fn parse_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{key}: {e}")),
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// All parsed pairs sorted by key, for deterministic config
    /// summaries (the run ledger).
    pub fn sorted_pairs(&self) -> Vec<(&str, &str)> {
        let mut pairs: Vec<_> = self
            .values
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        pairs.sort_unstable();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn key_value_pairs() -> Result<(), String> {
        let a = Args::parse(&sv(&["--supp", "8", "--algo", "ista"]))?;
        assert_eq!(a.get("supp"), Some("8"));
        assert_eq!(a.get("algo"), Some("ista"));
        assert_eq!(a.get("missing"), None);
        Ok(())
    }

    #[test]
    fn bare_flags() -> Result<(), String> {
        let a = Args::parse(&sv(&["--verbose", "--supp", "3"]))?;
        assert!(a.flag("verbose"));
        assert_eq!(a.require_parsed::<u32>("supp")?, 3);
        Ok(())
    }

    #[test]
    fn trailing_flag() -> Result<(), String> {
        let a = Args::parse(&sv(&["--supp", "3", "--no-prune"]))?;
        assert!(a.flag("no-prune"));
        Ok(())
    }

    #[test]
    fn errors() -> Result<(), String> {
        assert!(Args::parse(&sv(&["supp", "8"])).is_err());
        assert!(Args::parse(&sv(&["--"])).is_err());
        let a = Args::parse(&sv(&["--supp", "x"]))?;
        assert!(a.require_parsed::<u32>("supp").is_err());
        assert!(a.require("absent").is_err());
        Ok(())
    }

    #[test]
    fn parse_or_default() -> Result<(), String> {
        let a = Args::parse(&sv(&[]))?;
        assert_eq!(a.parse_or("scale", 1.5)?, 1.5);
        let a = Args::parse(&sv(&["--scale", "0.25"]))?;
        assert_eq!(a.parse_or("scale", 1.5)?, 0.25);
        Ok(())
    }
}

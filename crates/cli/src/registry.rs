//! Name → miner registry shared by the CLI subcommands.

use fim_baseline::{
    AprioriMiner, DEclatMiner, EclatMiner, FpCloseMiner, LcmClassicMiner, LcmMiner,
    NaiveCumulativeMiner, SamMiner,
};
use fim_carpenter::{CarpenterConfig, CarpenterListMiner, CarpenterTableMiner};
use fim_core::{ClosedMiner, Representation};
use fim_ista::{IstaConfig, IstaMiner, ParallelIstaMiner};

/// All registered algorithm names.
pub fn all_miner_names() -> &'static [&'static str] {
    &[
        "ista",
        "ista-par",
        "ista-noprune",
        "ista-plain",
        "ista-bitset",
        "carpenter-lists",
        "carpenter-lists-bitset",
        "carpenter-lists-gallop",
        "carpenter-table",
        "carpenter-table-noprune",
        "fpclose",
        "lcm",
        "lcm-noreuse",
        "eclat",
        "eclat-bitset",
        "eclat-gallop",
        "declat",
        "declat-bitset",
        "declat-gallop",
        "sam",
        "apriori",
        "naive-cumulative",
    ]
}

/// Looks up a miner by registry name.
pub fn miner_by_name(name: &str) -> Result<Box<dyn ClosedMiner>, String> {
    Ok(match name {
        "ista" => Box::new(IstaMiner::default()),
        "ista-par" => Box::new(ParallelIstaMiner::default()),
        "ista-noprune" => Box::new(IstaMiner::with_config(IstaConfig::without_pruning())),
        "ista-plain" => Box::new(IstaMiner::with_config(IstaConfig::without_patricia())),
        "carpenter-lists" => Box::new(CarpenterListMiner::default()),
        "carpenter-table" => Box::new(CarpenterTableMiner::default()),
        "carpenter-table-noprune" => {
            Box::new(CarpenterTableMiner::with_config(CarpenterConfig::unpruned()))
        }
        "ista-bitset" => Box::new(IstaMiner::with_config(IstaConfig::bitset())),
        "carpenter-lists-bitset" => Box::new(CarpenterListMiner::with_rep(Representation::Bitset)),
        "carpenter-lists-gallop" => Box::new(CarpenterListMiner::with_rep(Representation::Gallop)),
        "fpclose" => Box::new(FpCloseMiner),
        "lcm" => Box::new(LcmMiner),
        "lcm-noreuse" => Box::new(LcmClassicMiner),
        "eclat" => Box::new(EclatMiner::default()),
        "eclat-bitset" => Box::new(EclatMiner::with_rep(Representation::Bitset)),
        "eclat-gallop" => Box::new(EclatMiner::with_rep(Representation::Gallop)),
        "declat" => Box::new(DEclatMiner::default()),
        "declat-bitset" => Box::new(DEclatMiner::with_rep(Representation::Bitset)),
        "declat-gallop" => Box::new(DEclatMiner::with_rep(Representation::Gallop)),
        "sam" => Box::new(SamMiner),
        "apriori" => Box::new(AprioriMiner),
        "naive-cumulative" => Box::new(NaiveCumulativeMiner),
        other => return Err(format!("unknown algorithm '{other}' (try 'fim algos')")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves() {
        for name in all_miner_names() {
            let m = miner_by_name(name).unwrap();
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn unknown_name_is_error() {
        assert!(miner_by_name("nope").is_err());
    }
}

//! Observability plumbing behind `--metrics`, `--progress`, and
//! `--profile` (plus the `--stats` shorthand): flag parsing, the [`Obs`]
//! handle construction, and the metrics/profile writers. All
//! machine-readable output goes to stderr or an explicit file — stdout
//! stays clean result output for piping.

use crate::args::Args;
use crate::errors::{usage, CliError};
use fim_obs::{MetricsReport, Obs, ProgressEmitter, ProgressStyle, SpanRecorder};
use std::io::{IsTerminal, Write};
use std::time::Duration;

/// Parsed observability flags.
pub struct ObsArgs {
    /// `--metrics <path|->` destination (`-` means stderr); `--stats` is
    /// shorthand for `--metrics -`.
    pub metrics: Option<String>,
    /// `--progress <secs>` heartbeat interval.
    pub progress: Option<Duration>,
    /// `--profile <path>` collapsed-stack output file.
    pub profile: Option<String>,
}

impl ObsArgs {
    /// Extracts and validates the observability flags.
    pub fn from_args(args: &Args) -> Result<ObsArgs, CliError> {
        let metrics = match (args.get("metrics"), args.flag("stats")) {
            (Some(m), _) => Some(m.to_owned()),
            (None, true) => Some("-".to_owned()),
            (None, false) => None,
        };
        let progress = match args.get("progress") {
            None => None,
            Some(s) => {
                let secs: f64 = s
                    .parse()
                    .map_err(|e| usage(format!("bad --progress: {e}")))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(usage("--progress must be a positive number of seconds"));
                }
                Some(Duration::from_secs_f64(secs))
            }
        };
        let profile = args.get("profile").map(str::to_owned);
        Ok(ObsArgs {
            metrics,
            progress,
            profile,
        })
    }

    /// Whether any observability output was requested.
    pub fn any(&self) -> bool {
        self.metrics.is_some() || self.progress.is_some() || self.profile.is_some()
    }

    /// Builds the [`Obs`] handle the miners thread through their hot path:
    /// spans only when a profile is wanted (each span costs clock reads),
    /// the heartbeat only when an interval was given.
    pub fn build(&self) -> Obs {
        let mut obs = Obs::new();
        if self.profile.is_some() {
            obs.spans = Some(SpanRecorder::new());
        }
        if let Some(interval) = self.progress {
            // a terminal gets the human line; a pipe gets JSON lines
            let style = if std::io::stderr().is_terminal() {
                ProgressStyle::Human
            } else {
                ProgressStyle::JsonLines
            };
            obs.progress = Some(ProgressEmitter::stderr(interval, style));
        }
        obs
    }

    /// Writes the metrics document to the `--metrics` destination.
    pub fn emit_metrics(&self, report: &MetricsReport<'_>) -> Result<(), CliError> {
        let Some(dest) = self.metrics.as_deref() else {
            return Ok(());
        };
        let io_err = |e: std::io::Error| CliError::Other(format!("cannot write --metrics: {e}"));
        if dest == "-" {
            let stderr = std::io::stderr();
            let mut lock = stderr.lock();
            report.write_json(&mut lock).map_err(io_err)
        } else {
            let file = std::fs::File::create(dest)
                .map_err(|e| CliError::Other(format!("cannot create --metrics {dest}: {e}")))?;
            let mut w = std::io::BufWriter::new(file);
            report.write_json(&mut w).map_err(io_err)?;
            w.flush().map_err(io_err)
        }
    }

    /// Writes the recorded spans as collapsed stacks (`path;to;span N`
    /// lines, self-time micros) to the `--profile` path.
    pub fn emit_profile(&self, obs: &Obs) -> Result<(), CliError> {
        let Some(path) = self.profile.as_deref() else {
            return Ok(());
        };
        let Some(spans) = obs.spans.as_ref() else {
            return Ok(());
        };
        let io_err = |e: std::io::Error| CliError::Other(format!("cannot write --profile: {e}"));
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Other(format!("cannot create --profile {path}: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        spans.write_collapsed(&mut w).map_err(io_err)?;
        w.flush().map_err(io_err)
    }
}

//! Observability plumbing behind `--metrics`, `--progress`, `--profile`,
//! `--trace-events`, `--sample`, and `--ledger` (plus the `--stats`
//! shorthand): flag parsing, the [`Obs`] handle construction, and the
//! metrics/profile/trace/ledger writers. All machine-readable output goes
//! to stderr or an explicit file — stdout stays clean result output for
//! piping.

use crate::args::Args;
use crate::errors::{usage, CliError};
use fim_obs::{
    EventsMetrics, LedgerEntry, MetricsReport, Obs, PhaseHistograms, ProgressEmitter,
    ProgressStyle, ResourceGauges, ResourceSampler, SpanRecorder, TraceWriter,
};
use std::io::{IsTerminal, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Flags that are output channels rather than run configuration; excluded
/// from the ledger's `config` fingerprint so two otherwise-identical runs
/// with different observability setups compare as identical.
const CHANNEL_FLAGS: [&str; 9] = [
    "in",
    "out",
    "metrics",
    "stats",
    "progress",
    "profile",
    "trace-events",
    "sample",
    "ledger",
];

/// Parsed observability flags.
pub struct ObsArgs {
    /// `--metrics <path|->` destination (`-` means stderr); `--stats` is
    /// shorthand for `--metrics -`.
    pub metrics: Option<String>,
    /// `--progress <secs>` heartbeat interval.
    pub progress: Option<Duration>,
    /// `--profile <path>` collapsed-stack output file.
    pub profile: Option<String>,
    /// `--trace-events <path>` flight-recorder stream (Chrome
    /// `trace_event` array format).
    pub trace: Option<String>,
    /// `--sample <secs>` background resource-sampler interval.
    pub sample: Option<Duration>,
    /// `--ledger <path>` append-only run-ledger file.
    pub ledger: Option<String>,
}

impl ObsArgs {
    /// Extracts and validates the observability flags.
    pub fn from_args(args: &Args) -> Result<ObsArgs, CliError> {
        let metrics = match (args.get("metrics"), args.flag("stats")) {
            (Some(m), _) => Some(m.to_owned()),
            (None, true) => Some("-".to_owned()),
            (None, false) => None,
        };
        let interval_of = |key: &str| -> Result<Option<Duration>, CliError> {
            match args.get(key) {
                None => Ok(None),
                Some(s) => {
                    let secs: f64 = s.parse().map_err(|e| usage(format!("bad --{key}: {e}")))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(usage(format!(
                            "--{key} must be a positive number of seconds"
                        )));
                    }
                    Ok(Some(Duration::from_secs_f64(secs)))
                }
            }
        };
        let progress = interval_of("progress")?;
        let sample = interval_of("sample")?;
        let profile = args.get("profile").map(str::to_owned);
        let trace = args.get("trace-events").map(str::to_owned);
        let ledger = args.get("ledger").map(str::to_owned);
        Ok(ObsArgs {
            metrics,
            progress,
            profile,
            trace,
            sample,
            ledger,
        })
    }

    /// Whether any observability output was requested.
    pub fn any(&self) -> bool {
        self.metrics.is_some()
            || self.progress.is_some()
            || self.profile.is_some()
            || self.trace.is_some()
            || self.sample.is_some()
            || self.ledger.is_some()
    }

    /// Builds the [`Obs`] handle the miners thread through their hot path:
    /// spans when a profile or the ledger wants per-phase times, the
    /// heartbeat only when an interval was given, the trace stream when a
    /// path was given, and the sampler (plus gauges and phase histograms)
    /// when a sampling interval was given.
    pub fn build(&self) -> Result<Obs, CliError> {
        self.build_with_spill(None)
    }

    /// [`build`](Self::build) for runs that spill: the sampler measures
    /// `spill_dir` live instead of relying on the spill-bytes gauge.
    pub fn build_with_spill(&self, spill_dir: Option<&Path>) -> Result<Obs, CliError> {
        let mut obs = Obs::new();
        if self.profile.is_some() || self.ledger.is_some() {
            obs.spans = Some(SpanRecorder::new());
        }
        if let Some(interval) = self.progress {
            // a terminal gets the human line; a pipe gets JSON lines
            let style = if std::io::stderr().is_terminal() {
                ProgressStyle::Human
            } else {
                ProgressStyle::JsonLines
            };
            obs.progress = Some(ProgressEmitter::stderr(interval, style));
        }
        if let Some(path) = self.trace.as_deref() {
            let file = std::fs::File::create(path).map_err(|e| {
                CliError::Other(format!("cannot create --trace-events {path}: {e}"))
            })?;
            obs.trace = Some(TraceWriter::new(Box::new(std::io::BufWriter::new(file))));
        }
        if let Some(interval) = self.sample {
            let gauges = Arc::new(ResourceGauges::default());
            obs.sampler = Some(ResourceSampler::start(
                interval,
                Arc::clone(&gauges),
                spill_dir.map(Path::to_path_buf),
            ));
            obs.gauges = Some(gauges);
            obs.hist = Some(PhaseHistograms::new());
        }
        Ok(obs)
    }

    /// Drains the run-scoped collectors into the report: stops the
    /// sampler, folds the resource series and phase histograms into the
    /// `resources` section, and finishes the trace stream into the
    /// `events` section. Call once, after mining and before
    /// [`emit_metrics`](Self::emit_metrics) / [`emit_ledger`](Self::emit_ledger).
    pub fn finalize(&self, obs: &mut Obs, report: &mut MetricsReport<'_>) {
        report.resources = obs.take_resources();
        if let Some(emitted) = obs.finish_trace() {
            report.events = Some(EventsMetrics {
                path: self.trace.clone().unwrap_or_default(),
                emitted,
            });
        }
    }

    /// Writes the metrics document to the `--metrics` destination.
    pub fn emit_metrics(&self, report: &MetricsReport<'_>) -> Result<(), CliError> {
        let Some(dest) = self.metrics.as_deref() else {
            return Ok(());
        };
        let io_err = |e: std::io::Error| CliError::Other(format!("cannot write --metrics: {e}"));
        if dest == "-" {
            let stderr = std::io::stderr();
            let mut lock = stderr.lock();
            report.write_json(&mut lock).map_err(io_err)
        } else {
            let file = std::fs::File::create(dest)
                .map_err(|e| CliError::Other(format!("cannot create --metrics {dest}: {e}")))?;
            let mut w = std::io::BufWriter::new(file);
            report.write_json(&mut w).map_err(io_err)?;
            w.flush().map_err(io_err)
        }
    }

    /// Writes the recorded spans as collapsed stacks (`path;to;span N`
    /// lines, self-time micros) to the `--profile` path.
    pub fn emit_profile(&self, obs: &Obs) -> Result<(), CliError> {
        let Some(path) = self.profile.as_deref() else {
            return Ok(());
        };
        let Some(spans) = obs.spans.as_ref() else {
            return Ok(());
        };
        let io_err = |e: std::io::Error| CliError::Other(format!("cannot write --profile: {e}"));
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Other(format!("cannot create --profile {path}: {e}")))?;
        let mut w = std::io::BufWriter::new(file);
        spans.write_collapsed(&mut w).map_err(io_err)?;
        w.flush().map_err(io_err)
    }

    /// Appends one fingerprinted line to the `--ledger` file, built from
    /// the finalized report plus the run's input and exit status. A no-op
    /// without `--ledger`.
    pub fn emit_ledger(
        &self,
        args: &Args,
        report: &MetricsReport<'_>,
        obs: &Obs,
        exit: &str,
    ) -> Result<(), CliError> {
        let Some(path) = self.ledger.as_deref() else {
            return Ok(());
        };
        // stdin runs have no stable input identity; fingerprint 0 marks
        // them honestly rather than hashing a stream we cannot re-read.
        let input_fnv = match args.get("in") {
            Some(input) => fim_obs::fnv1a_file(Path::new(input))
                .map_err(|e| CliError::Other(format!("cannot fingerprint --in {input}: {e}")))?,
            None => 0,
        };
        let config = args
            .sorted_pairs()
            .into_iter()
            .filter(|(k, _)| !CHANNEL_FLAGS.contains(k))
            .map(|(k, v)| {
                if v == "true" {
                    k.to_string()
                } else {
                    format!("{k}={v}")
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        let phases = obs
            .spans
            .as_ref()
            .map(|s| {
                s.self_rows()
                    .into_iter()
                    .map(|(path, dur)| (path, dur.as_secs_f64()))
                    .collect()
            })
            .unwrap_or_default();
        let entry = LedgerEntry {
            input_fnv,
            algo: report.miner.to_string(),
            supp: u64::from(report.supp),
            config,
            seconds: report.seconds,
            sets: report.sets,
            transactions: report.transactions_total,
            peak_rss_kb: report.resources.peak_rss_kb,
            exit: exit.to_string(),
            phases,
            counters: report
                .counters
                .iter_nonzero()
                .map(|(name, value)| (name.to_string(), value))
                .collect(),
        };
        entry
            .append(Path::new(path))
            .map_err(|e| CliError::Other(format!("cannot append --ledger {path}: {e}")))
    }
}

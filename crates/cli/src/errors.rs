//! CLI failures classified by their documented process exit code.
//!
//! | code | class  | meaning                                             |
//! |------|--------|-----------------------------------------------------|
//! | 0    | —      | success                                             |
//! | 1    | other  | I/O failures and everything unclassified            |
//! | 2    | usage  | bad command line (unknown command, missing flag, …) |
//! | 3    | parse  | malformed input data or corrupt checkpoint          |
//! | 4    | budget | a resource budget tripped before the run finished   |
//!
//! The CI fault-injection job asserts these codes against the malformed
//! corpus and against deliberately starved budgets, so they are part of the
//! CLI's stable interface (documented in `fim help`).

use fim_core::FimError;
use std::fmt;

/// A CLI failure carrying its exit-code class.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation (exit 2).
    Usage(String),
    /// Malformed input or checkpoint (exit 3).
    Parse(String),
    /// A resource budget tripped (exit 4).
    Budget(String),
    /// Everything else, e.g. I/O failures (exit 1).
    Other(String),
}

impl CliError {
    /// The documented process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 3,
            CliError::Budget(_) => 4,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m} (try 'fim help')"),
            CliError::Parse(m) | CliError::Budget(m) | CliError::Other(m) => f.write_str(m),
        }
    }
}

/// Plain-`String` errors come from argument handling: usage class.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<FimError> for CliError {
    fn from(e: FimError) -> Self {
        match &e {
            FimError::Parse { .. } | FimError::Corrupt(_) => CliError::Parse(e.to_string()),
            FimError::Interrupted(_) => CliError::Budget(e.to_string()),
            _ => CliError::Other(e.to_string()),
        }
    }
}

/// Shorthand for building a usage error.
pub fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::TripReason;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Other("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Parse("x".into()).exit_code(), 3);
        assert_eq!(CliError::Budget("x".into()).exit_code(), 4);
    }

    #[test]
    fn fim_error_classification() {
        let parse = FimError::Parse {
            line: 3,
            message: "bad".into(),
        };
        assert_eq!(CliError::from(parse).exit_code(), 3);
        assert_eq!(
            CliError::from(FimError::Corrupt("crc".into())).exit_code(),
            3
        );
        assert_eq!(
            CliError::from(FimError::Interrupted(TripReason::Timeout)).exit_code(),
            4
        );
        assert_eq!(
            CliError::from(FimError::InvalidInput("x".into())).exit_code(),
            1
        );
    }

    #[test]
    fn usage_display_hints_at_help() {
        let msg = usage("missing --supp").to_string();
        assert!(msg.contains("fim help"), "{msg}");
    }
}

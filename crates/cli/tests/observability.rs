//! End-to-end tests of the observability flags: `--stats`, `--metrics`,
//! `--progress`, `--profile`, `--trace-events`, `--sample`, `--ledger`,
//! plus the `fim compare` and `fim trace-export` commands built on them.
//! The central invariant is output routing — stdout carries only item
//! sets no matter which observability output is enabled, so
//! `fim mine ... > out.txt` stays pipeable.

use std::io::Write;
use std::process::{Command, Stdio};

fn fim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fim"))
}

const DATA: &[u8] = b"a b c\na d e\nb c d\na b c d\nb c\na b d\nd e\nc d e\n";

fn run_mine(extra: &[&str]) -> std::process::Output {
    let mut child = fim()
        .args(["mine", "--supp", "3"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(DATA).unwrap();
    child.wait_with_output().unwrap()
}

/// Every stdout line must be an item-set line: `name name ... (support)`.
fn assert_only_item_sets(stdout: &[u8]) {
    let text = String::from_utf8(stdout.to_vec()).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        let (items, supp) = line.rsplit_once(" (").expect("no support suffix");
        assert!(supp.ends_with(')'), "bad line: {line}");
        assert!(
            supp[..supp.len() - 1].parse::<u32>().is_ok(),
            "bad support in: {line}"
        );
        assert!(
            items.split(' ').all(|w| !w.is_empty() && !w.contains('{')),
            "bad items in: {line}"
        );
    }
}

#[test]
fn stdout_stays_clean_with_all_observability_on() {
    let dir = std::env::temp_dir().join("fim_obs_test");
    std::fs::create_dir_all(&dir).unwrap();
    let profile = dir.join("profile.folded");
    let plain = run_mine(&[]);
    assert!(plain.status.success());
    let observed = run_mine(&[
        "--metrics",
        "-",
        "--progress",
        "1",
        "--profile",
        profile.to_str().unwrap(),
    ]);
    assert!(observed.status.success());
    assert_only_item_sets(&observed.stdout);
    // observability must not change the mined result, byte for byte
    assert_eq!(plain.stdout, observed.stdout);
    // ... and all machine-readable output lands on stderr
    let err = String::from_utf8(observed.stderr).unwrap();
    assert!(
        err.contains("\"schema\": \"fim-metrics/2\""),
        "stderr: {err}"
    );
    // the profile is collapsed-stack: `path;to;span <micros>` lines
    let folded = std::fs::read_to_string(&profile).unwrap();
    assert!(folded.lines().count() >= 2, "profile too small: {folded}");
    for line in folded.lines() {
        let (path, micros) = line.rsplit_once(' ').unwrap();
        assert!(!path.is_empty());
        assert!(micros.parse::<u64>().is_ok(), "bad line: {line}");
    }
    assert!(folded.contains("mine;"), "missing miner phases: {folded}");
    std::fs::remove_file(&profile).ok();
}

#[test]
fn metrics_file_passes_schema_validation() {
    let dir = std::env::temp_dir().join("fim_obs_test");
    std::fs::create_dir_all(&dir).unwrap();
    for algo in [
        "ista",
        "ista-plain",
        "ista-par",
        "carpenter-lists",
        "carpenter-table",
        "eclat",
    ] {
        let path = dir.join(format!("metrics-{algo}.json"));
        let out = run_mine(&["--algo", algo, "--metrics", path.to_str().unwrap()]);
        assert!(out.status.success(), "{algo}");
        assert_only_item_sets(&out.stdout);
        let doc = std::fs::read_to_string(&path).unwrap();
        fim_obs::validate_metrics_json(&doc).unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert!(doc.contains(&format!("\"miner\": \"{algo}\"")), "{doc}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn stats_is_shorthand_for_metrics_on_stderr() {
    for algo in ["ista", "carpenter-lists", "carpenter-table", "eclat"] {
        let out = run_mine(&["--algo", algo, "--stats"]);
        assert!(out.status.success(), "{algo}");
        assert_only_item_sets(&out.stdout);
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("\"schema\": \"fim-metrics/2\""),
            "{algo}: {err}"
        );
        assert!(err.contains("\"counters\""), "{algo}: {err}");
    }
}

#[test]
fn progress_lines_are_json_when_piped() {
    let out = run_mine(&["--progress", "0.0001"]);
    assert!(out.status.success());
    assert_only_item_sets(&out.stdout);
    let err = String::from_utf8(out.stderr).unwrap();
    let progress: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"progress\""))
        .collect();
    assert!(!progress.is_empty(), "no heartbeat: {err}");
    for line in &progress {
        assert!(line.contains("\"processed\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
    }
}

fn run_fim(args: &[&str]) -> std::process::Output {
    fim().args(args).output().unwrap()
}

#[test]
fn trace_sampler_and_ledger_end_to_end() {
    let dir = std::env::temp_dir().join(format!("fim_flight_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.fimi");
    std::fs::write(&input, DATA).unwrap();
    let trace = dir.join("trace.json");
    let ledger = dir.join("ledger.jsonl");
    let metrics = dir.join("metrics.json");

    let plain = run_fim(&["mine", "--supp", "3", "--in", input.to_str().unwrap()]);
    assert!(plain.status.success());
    let observed = run_fim(&[
        "mine",
        "--supp",
        "3",
        "--in",
        input.to_str().unwrap(),
        "--trace-events",
        trace.to_str().unwrap(),
        "--sample",
        "0.001",
        "--ledger",
        ledger.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        observed.status.success(),
        "{}",
        String::from_utf8_lossy(&observed.stderr)
    );
    // the full flight-recorder bundle must not change the mined result
    assert_eq!(plain.stdout, observed.stdout);

    // the trace parses as the Chrome array format, begin/end balanced
    let text = std::fs::read_to_string(&trace).unwrap();
    let events = fim_obs::read_trace(&text).unwrap_or_else(|e| panic!("{e}"));
    assert!(!events.is_empty(), "empty trace");
    fim_obs::validate_trace_pairing(&events).unwrap_or_else(|e| panic!("{e}"));

    // trace-export rewrites it as one strict JSON object
    let exported = dir.join("trace-chrome.json");
    let out = run_fim(&[
        "trace-export",
        "--in",
        trace.to_str().unwrap(),
        "--out",
        exported.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let obj = std::fs::read_to_string(&exported).unwrap();
    let doc = fim_obs::json::parse_json(&obj).expect("strict JSON object");
    assert!(doc.get("traceEvents").is_some(), "{obj}");

    // the metrics document is v2 with resources and events sections
    let doc = std::fs::read_to_string(&metrics).unwrap();
    fim_obs::validate_metrics_json(&doc).unwrap_or_else(|e| panic!("{e}"));
    assert!(doc.contains("\"resources\""), "{doc}");
    assert!(doc.contains("\"events\""), "{doc}");

    // the ledger holds one entry fingerprinting the real input
    let entries = fim_obs::read_ledger(&std::fs::read_to_string(&ledger).unwrap()).unwrap();
    assert_eq!(entries.len(), 1);
    let entry = &entries[0];
    assert_eq!(entry.exit, "ok");
    assert_eq!(entry.input_fnv, fim_obs::fnv1a(DATA));
    assert!(entry.sets > 0);
    assert!(!entry.phases.is_empty(), "ledger recorded no phases");
    // output-channel flags must not leak into the config fingerprint
    assert!(!entry.config.contains("ledger"), "{}", entry.config);
    assert!(!entry.config.contains("trace-events"), "{}", entry.config);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_gates_regressions() {
    let dir = std::env::temp_dir().join(format!("fim_compare_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("data.fimi");
    std::fs::write(&input, DATA).unwrap();
    let base = dir.join("base.jsonl");
    let new = dir.join("new.jsonl");
    for ledger in [&base, &new] {
        let out = run_fim(&[
            "mine",
            "--supp",
            "3",
            "--in",
            input.to_str().unwrap(),
            "--ledger",
            ledger.to_str().unwrap(),
            "--out",
            dir.join("sets.txt").to_str().unwrap(),
        ]);
        assert!(out.status.success());
    }

    // two runs of the same build on the same input: no regressions
    let out = run_fim(&[
        "compare",
        "--base",
        base.to_str().unwrap(),
        "--new",
        new.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "identical runs regressed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.contains("seconds"), "{table}");
    assert!(table.contains("0 regression(s)"), "{table}");

    // a doctored baseline claiming a different set count must gate
    let entries = fim_obs::read_ledger(&std::fs::read_to_string(&base).unwrap()).unwrap();
    let mut doctored = entries[0].clone();
    doctored.sets += 1;
    let doctored_path = dir.join("doctored.jsonl");
    std::fs::write(&doctored_path, format!("{}\n", doctored.to_json_line())).unwrap();
    let out = run_fim(&[
        "compare",
        "--base",
        doctored_path.to_str().unwrap(),
        "--new",
        new.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "sets drift must exit 1");
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.contains("REGRESSED"), "{table}");

    // machine output parses as JSON and carries the schema tag
    let out = run_fim(&[
        "compare",
        "--base",
        base.to_str().unwrap(),
        "--new",
        new.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).unwrap();
    let doc = fim_obs::json::parse_json(&json).expect("compare --json parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("fim-compare/1")
    );

    // garbage input is a parse error (exit 3), not a crash
    let garbage = dir.join("garbage.txt");
    std::fs::write(&garbage, "not a metrics file").unwrap();
    let out = run_fim(&[
        "compare",
        "--base",
        garbage.to_str().unwrap(),
        "--new",
        new.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn observability_rejected_for_unsupported_algo_and_budgets() {
    let out = run_mine(&["--algo", "fpclose", "--stats"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not available for 'fpclose'"));

    let out = run_mine(&["--stats", "--timeout", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("budget flags"));
}

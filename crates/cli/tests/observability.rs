//! End-to-end tests of the observability flags: `--stats`, `--metrics`,
//! `--progress`, `--profile`. The central invariant is output routing —
//! stdout carries only item sets no matter which observability output is
//! enabled, so `fim mine ... > out.txt` stays pipeable.

use std::io::Write;
use std::process::{Command, Stdio};

fn fim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fim"))
}

const DATA: &[u8] = b"a b c\na d e\nb c d\na b c d\nb c\na b d\nd e\nc d e\n";

fn run_mine(extra: &[&str]) -> std::process::Output {
    let mut child = fim()
        .args(["mine", "--supp", "3"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(DATA).unwrap();
    child.wait_with_output().unwrap()
}

/// Every stdout line must be an item-set line: `name name ... (support)`.
fn assert_only_item_sets(stdout: &[u8]) {
    let text = String::from_utf8(stdout.to_vec()).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        let (items, supp) = line.rsplit_once(" (").expect("no support suffix");
        assert!(supp.ends_with(')'), "bad line: {line}");
        assert!(
            supp[..supp.len() - 1].parse::<u32>().is_ok(),
            "bad support in: {line}"
        );
        assert!(
            items.split(' ').all(|w| !w.is_empty() && !w.contains('{')),
            "bad items in: {line}"
        );
    }
}

#[test]
fn stdout_stays_clean_with_all_observability_on() {
    let dir = std::env::temp_dir().join("fim_obs_test");
    std::fs::create_dir_all(&dir).unwrap();
    let profile = dir.join("profile.folded");
    let plain = run_mine(&[]);
    assert!(plain.status.success());
    let observed = run_mine(&[
        "--metrics",
        "-",
        "--progress",
        "1",
        "--profile",
        profile.to_str().unwrap(),
    ]);
    assert!(observed.status.success());
    assert_only_item_sets(&observed.stdout);
    // observability must not change the mined result, byte for byte
    assert_eq!(plain.stdout, observed.stdout);
    // ... and all machine-readable output lands on stderr
    let err = String::from_utf8(observed.stderr).unwrap();
    assert!(
        err.contains("\"schema\": \"fim-metrics/1\""),
        "stderr: {err}"
    );
    // the profile is collapsed-stack: `path;to;span <micros>` lines
    let folded = std::fs::read_to_string(&profile).unwrap();
    assert!(folded.lines().count() >= 2, "profile too small: {folded}");
    for line in folded.lines() {
        let (path, micros) = line.rsplit_once(' ').unwrap();
        assert!(!path.is_empty());
        assert!(micros.parse::<u64>().is_ok(), "bad line: {line}");
    }
    assert!(folded.contains("mine;"), "missing miner phases: {folded}");
    std::fs::remove_file(&profile).ok();
}

#[test]
fn metrics_file_passes_schema_validation() {
    let dir = std::env::temp_dir().join("fim_obs_test");
    std::fs::create_dir_all(&dir).unwrap();
    for algo in [
        "ista",
        "ista-plain",
        "ista-par",
        "carpenter-lists",
        "carpenter-table",
        "eclat",
    ] {
        let path = dir.join(format!("metrics-{algo}.json"));
        let out = run_mine(&["--algo", algo, "--metrics", path.to_str().unwrap()]);
        assert!(out.status.success(), "{algo}");
        assert_only_item_sets(&out.stdout);
        let doc = std::fs::read_to_string(&path).unwrap();
        fim_obs::validate_metrics_json(&doc).unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert!(doc.contains(&format!("\"miner\": \"{algo}\"")), "{doc}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn stats_is_shorthand_for_metrics_on_stderr() {
    for algo in ["ista", "carpenter-lists", "carpenter-table", "eclat"] {
        let out = run_mine(&["--algo", algo, "--stats"]);
        assert!(out.status.success(), "{algo}");
        assert_only_item_sets(&out.stdout);
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("\"schema\": \"fim-metrics/1\""),
            "{algo}: {err}"
        );
        assert!(err.contains("\"counters\""), "{algo}: {err}");
    }
}

#[test]
fn progress_lines_are_json_when_piped() {
    let out = run_mine(&["--progress", "0.0001"]);
    assert!(out.status.success());
    assert_only_item_sets(&out.stdout);
    let err = String::from_utf8(out.stderr).unwrap();
    let progress: Vec<&str> = err
        .lines()
        .filter(|l| l.starts_with("{\"type\":\"progress\""))
        .collect();
    assert!(!progress.is_empty(), "no heartbeat: {err}");
    for line in &progress {
        assert!(line.contains("\"processed\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
    }
}

#[test]
fn observability_rejected_for_unsupported_algo_and_budgets() {
    let out = run_mine(&["--algo", "fpclose", "--stats"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not available for 'fpclose'"));

    let out = run_mine(&["--stats", "--timeout", "10"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("budget flags"));
}

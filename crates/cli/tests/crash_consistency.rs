//! Crash-consistency harness for the out-of-core pipeline: kills a real
//! `fim` subprocess at every registered fault point (panic kind — the
//! closest in-process stand-in for `kill -9` at that instruction), then
//! resumes with `--resume-spill` and asserts the final output is
//! byte-identical to an uninterrupted run. Also covers the graceful
//! degradations: ENOSPC → exit 4 with an exact partial and a resumable
//! manifest, transient I/O faults absorbed by `--io-retries`, and torn
//! (partial) writes caught by CRC validation on resume.
//!
//! The CI fault-injection job runs the same kill-at-every-point loop from
//! the shell (via `FIM_INJECT_FAULT`), so the fault-point names and the
//! resume contract asserted here are a stable interface.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Every fault point the out-of-core pipeline threads, in pipeline order.
/// Mirrors `fim_core::fault::points::OOCORE`; pinned here so a silently
/// renamed or dropped point fails the harness.
const OOCORE_POINTS: &[&str] = &[
    "counts.pass1",
    "pass2.read",
    "spill.write",
    "spill.sync",
    "spill.rename",
    "merge.read",
    "manifest.write",
];

/// A ~40-transaction, 8-item input that slices into several shards under a
/// tiny `--mem-budget`, so every pipeline stage (shard mine, spill, merge
/// reduce) actually runs and has spills in flight when a fault fires.
fn input_text() -> String {
    let items = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let mut text = String::new();
    for i in 0..40usize {
        let mut line = Vec::new();
        for (j, name) in items.iter().enumerate() {
            // a deterministic, irregular pattern with plenty of overlap
            if (i * 7 + j * 3) % (j + 2) == 0 {
                line.push(*name);
            }
        }
        if line.is_empty() {
            line.push(items[i % items.len()]);
        }
        text.push_str(&line.join(" "));
        text.push('\n');
    }
    text
}

struct Scratch {
    dir: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("fim_crash_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch { dir }
    }
    fn input(&self) -> String {
        let p = self.dir.join("in.fimi");
        if !p.exists() {
            std::fs::write(&p, input_text()).expect("write input");
        }
        p.to_string_lossy().into_owned()
    }
    fn spill(&self) -> String {
        self.dir.join("spill").to_string_lossy().into_owned()
    }
    fn metrics(&self) -> PathBuf {
        self.dir.join("metrics.json")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn fim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fim"))
        .args(args)
        .output()
        .expect("spawn fim")
}

fn code(out: &Output) -> i32 {
    out.status.code().unwrap_or(-1)
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// The uninterrupted reference: a plain in-memory mine over the same input
/// with the same support and item order.
fn reference_output(s: &Scratch) -> Vec<u8> {
    let out = fim(&["mine", "--supp", "3", "--in", &s.input()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    out.stdout
}

fn oocore_args<'a>(s_input: &'a str, s_spill: &'a str) -> Vec<&'a str> {
    vec![
        "mine",
        "--supp",
        "3",
        "--out-of-core",
        "--mem-budget",
        "64",
        "--spill-dir",
        s_spill,
        "--in",
        s_input,
    ]
}

#[test]
fn kill_at_every_fault_point_then_resume_is_byte_identical() {
    let s = Scratch::new("kill_matrix");
    let (input, spill) = (s.input(), s.spill());
    let want = reference_output(&s);
    // sanity: the budget actually slices this input into several shards
    let smoke = fim(&oocore_args(&input, &spill));
    assert_eq!(code(&smoke), 0, "{}", stderr(&smoke));
    assert_eq!(smoke.stdout, want, "oocore output diverges before faults");
    let shard_line = stderr(&smoke);
    let shards: u64 = shard_line
        .split(" shards")
        .next()
        .and_then(|s| s.rsplit(' ').next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    assert!(
        shards >= 3,
        "want >=3 shards for a real matrix: {shard_line}"
    );

    for point in OOCORE_POINTS {
        for nth in [1u64, 3] {
            let spec = format!("{point}:{nth}");
            let mut args = oocore_args(&input, &spill);
            args.extend_from_slice(&["--inject-fault", &spec]);
            let killed = fim(&args);
            // panic kind: the process dies (no exit 0) at that instruction
            assert_ne!(
                code(&killed),
                0,
                "fault {spec} did not kill the run: {}",
                stderr(&killed)
            );
            // resume from whatever the corpse left behind
            let mut args = oocore_args(&input, &spill);
            args.push("--resume-spill");
            let resumed = fim(&args);
            assert_eq!(
                code(&resumed),
                0,
                "resume after {spec} failed: {}",
                stderr(&resumed)
            );
            assert_eq!(
                resumed.stdout, want,
                "resume after {spec} diverged from the uninterrupted run"
            );
            // a completed resume leaves no spill state behind
            let manifest = PathBuf::from(&spill).join("MANIFEST");
            assert!(!manifest.exists(), "manifest survived resume after {spec}");
        }
    }
}

#[test]
fn resume_after_kill_adopts_completed_shards() {
    let s = Scratch::new("adopt");
    let (input, spill) = (s.input(), s.spill());
    let want = reference_output(&s);
    // kill late in the spill sequence so several shards are already
    // journaled when the process dies
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--inject-fault", "spill.write:4"]);
    let killed = fim(&args);
    assert_ne!(code(&killed), 0);
    let metrics = s.metrics();
    let metrics_path = metrics.to_string_lossy().into_owned();
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--resume-spill", "--metrics", &metrics_path]);
    let resumed = fim(&args);
    assert_eq!(code(&resumed), 0, "{}", stderr(&resumed));
    assert_eq!(resumed.stdout, want);
    let json = std::fs::read_to_string(&metrics).expect("metrics json");
    // the spill section must report adopted shards — proof that completed
    // work was not silently re-mined
    let resumed_count = json
        .split("\"shards_resumed\": ")
        .nth(1)
        .map(|t| {
            t.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|n| n.parse::<u64>().ok())
        .expect("shards_resumed in metrics json");
    assert!(resumed_count > 0, "no shards adopted on resume: {json}");
}

#[test]
fn enospc_exits_4_with_exact_partial_and_resumable_manifest() {
    let s = Scratch::new("enospc");
    let (input, spill) = (s.input(), s.spill());
    let want = reference_output(&s);
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--inject-fault", "spill.write:3:enospc"]);
    let out = fim(&args);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    let msg = stderr(&out);
    assert!(msg.contains("disk full"), "{msg}");
    assert!(msg.contains("--resume-spill"), "{msg}");
    // the partial is exact: every reported line appears in the full answer
    // (supports are true supports of the processed prefix, so the *lines*
    // differ; but the run must produce parseable, non-empty output)
    assert!(!out.stdout.is_empty(), "no partial written");
    let manifest = PathBuf::from(&spill).join("MANIFEST");
    assert!(manifest.exists(), "no resumable manifest after ENOSPC");
    // disk freed: the resume completes to the identical answer
    let mut args = oocore_args(&input, &spill);
    args.push("--resume-spill");
    let resumed = fim(&args);
    assert_eq!(code(&resumed), 0, "{}", stderr(&resumed));
    assert_eq!(resumed.stdout, want);
    assert!(!manifest.exists(), "manifest survived a completed resume");
}

#[test]
fn io_retries_absorb_transient_faults() {
    let s = Scratch::new("retries");
    let (input, spill) = (s.input(), s.spill());
    let want = reference_output(&s);
    // without retries the transient fault is fatal
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--inject-fault", "spill.write:2:io"]);
    let out = fim(&args);
    assert_ne!(code(&out), 0, "transient fault ignored without retries");
    // with retries the same fault is absorbed and the run completes
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--inject-fault", "spill.write:2:io"]);
    args.extend_from_slice(&["--io-retries", "2", "--resume-spill"]);
    let retried = fim(&args);
    assert_eq!(code(&retried), 0, "{}", stderr(&retried));
    assert_eq!(retried.stdout, want);
}

#[test]
fn torn_spill_write_is_caught_not_trusted() {
    let s = Scratch::new("torn");
    let (input, spill) = (s.input(), s.spill());
    let want = reference_output(&s);
    // partial kind: the spill write "succeeds" but the file is truncated
    // to half its length — the torn-but-renamed case. The run either fails
    // on CRC validation when the spill is read back, or completes; it must
    // never emit wrong output.
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--inject-fault", "spill.write:2:partial"]);
    let out = fim(&args);
    if code(&out) == 0 {
        assert_eq!(out.stdout, want, "torn spill silently corrupted output");
    } else {
        let msg = stderr(&out);
        assert!(
            msg.contains("crc") || msg.contains("corrupt") || msg.contains("truncated"),
            "unexpected failure mode: {msg}"
        );
        // and the damage is recoverable
        let mut args = oocore_args(&input, &spill);
        args.push("--resume-spill");
        let resumed = fim(&args);
        assert_eq!(code(&resumed), 0, "{}", stderr(&resumed));
        assert_eq!(resumed.stdout, want);
    }
}

#[test]
fn env_var_arms_the_same_faults_as_the_flag() {
    let s = Scratch::new("env");
    let (input, spill) = (s.input(), s.spill());
    let out = Command::new(env!("CARGO_BIN_EXE_fim"))
        .args(oocore_args(&input, &spill))
        .env("FIM_INJECT_FAULT", "spill.write:1:io")
        .output()
        .expect("spawn fim");
    assert_ne!(code(&out), 0, "env-armed fault did not fire");
}

#[test]
fn unknown_fault_point_is_a_usage_error() {
    let s = Scratch::new("badpoint");
    let (input, spill) = (s.input(), s.spill());
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--inject-fault", "no.such.point:1"]);
    let out = fim(&args);
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(
        stderr(&out).contains("unknown fault point"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn foreign_manifest_is_rejected_with_exit_3() {
    let s = Scratch::new("foreign");
    let (input, spill) = (s.input(), s.spill());
    // leave a manifest behind via an ENOSPC trip
    let mut args = oocore_args(&input, &spill);
    args.extend_from_slice(&["--inject-fault", "spill.write:3:enospc"]);
    let out = fim(&args);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    // the input changes: the manifest no longer describes this database
    let mut text = input_text();
    text.push_str("a b c d\n");
    std::fs::write(&input, text).expect("grow input");
    let mut args = oocore_args(&input, &spill);
    args.push("--resume-spill");
    let rejected = fim(&args);
    assert_eq!(code(&rejected), 3, "{}", stderr(&rejected));
    let msg = stderr(&rejected);
    assert!(msg.contains("MANIFEST"), "{msg}");
    assert!(msg.contains("fingerprint"), "{msg}");
}

//! End-to-end tests of the `fim` binary's documented exit codes:
//! 0 success, 1 other, 2 usage, 3 parse, 4 budget tripped. The CI
//! fault-injection job re-asserts the same contract from the shell against
//! the malformed corpus, so these codes are a stable interface.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fim"))
        .args(args)
        .output()
        .expect("spawn fim")
}

/// The io crate's test corpus, shared instead of duplicated.
fn data(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../io/tests/data")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test scratch path, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("fim_cli_{}_{name}", std::process::id()));
        Scratch(p)
    }
    fn path(&self) -> String {
        self.0.to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

#[test]
fn success_is_exit_zero() {
    let out = fim(&["mine", "--supp", "1", "--in", &data("valid.fimi")]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(!out.stdout.is_empty());
}

#[test]
fn usage_errors_exit_2() {
    for argv in [
        vec!["frobnicate"],
        vec!["mine", "--in", &data("valid.fimi")], // missing --supp
        vec![
            "mine",
            "--supp",
            "not-a-number",
            "--in",
            &data("valid.fimi"),
        ],
        vec![
            "mine",
            "--supp",
            "1",
            "--in",
            &data("valid.fimi"),
            "--degrade",
        ],
        vec![
            "mine",
            "--supp",
            "1",
            "--algo",
            "no-such-algo",
            "--in",
            &data("valid.fimi"),
        ],
        vec![
            "mine",
            "--supp",
            "1",
            "--algo",
            "eclat",
            "--in",
            &data("valid.fimi"),
            "--checkpoint",
            "/tmp/x",
        ],
    ] {
        let out = fim(&argv);
        assert_eq!(code(&out), 2, "argv {argv:?}: {}", stderr(&out));
        assert!(stderr(&out).contains("fim help"), "argv {argv:?}");
    }
}

#[test]
fn malformed_input_exits_3_with_line_number() {
    for file in [
        "malformed/control_char.fimi",
        "malformed/huge_code.fimi",
        "malformed/negative_code.fimi",
        "malformed/not_utf8.fimi",
    ] {
        let out = fim(&["mine", "--supp", "1", "--in", &data(file)]);
        assert_eq!(code(&out), 3, "{file}: {}", stderr(&out));
        assert!(stderr(&out).contains("line 2"), "{file}: {}", stderr(&out));
    }
}

#[test]
fn tripped_timeout_exits_4_for_every_governed_algo() {
    for algo in ["ista", "carpenter-lists", "eclat"] {
        let out = fim(&[
            "mine",
            "--supp",
            "1",
            "--algo",
            algo,
            "--in",
            &data("valid.fimi"),
            "--timeout",
            "0",
        ]);
        assert_eq!(code(&out), 4, "{algo}: {}", stderr(&out));
        assert!(stderr(&out).contains("timeout"), "{algo}: {}", stderr(&out));
    }
}

#[test]
fn degradation_completes_with_exit_zero() {
    let out = fim(&[
        "mine",
        "--supp",
        "1",
        "--in",
        &data("valid.fimi"),
        "--max-nodes",
        "1",
        "--degrade",
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(stderr(&out).contains("degraded"), "{}", stderr(&out));
}

#[test]
fn checkpoint_trip_then_resume_matches_straight_run() {
    let ck = Scratch::new("resume.ck");
    let straight = fim(&["mine", "--supp", "1", "--in", &data("valid.fimi")]);
    assert_eq!(code(&straight), 0, "{}", stderr(&straight));

    // a 1-node budget trips after the first transaction builds its path
    let tripped = fim(&[
        "mine",
        "--supp",
        "1",
        "--in",
        &data("valid.fimi"),
        "--checkpoint",
        &ck.path(),
        "--max-nodes",
        "1",
    ]);
    assert_eq!(code(&tripped), 4, "{}", stderr(&tripped));
    assert!(
        stderr(&tripped).contains("--resume"),
        "{}",
        stderr(&tripped)
    );

    let resumed = fim(&[
        "mine",
        "--supp",
        "1",
        "--in",
        &data("valid.fimi"),
        "--resume",
        &ck.path(),
    ]);
    assert_eq!(code(&resumed), 0, "{}", stderr(&resumed));
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&straight.stdout),
        "resumed run diverged from the uninterrupted one"
    );
}

#[test]
fn corrupt_checkpoint_exits_3() {
    let ck = Scratch::new("corrupt.ck");
    std::fs::write(&ck.0, b"ISTC garbage that is no checkpoint").expect("write scratch");
    let out = fim(&[
        "mine",
        "--supp",
        "1",
        "--in",
        &data("valid.fimi"),
        "--resume",
        &ck.path(),
    ]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
}

#[test]
fn truncated_checkpoint_exits_3_naming_file_and_offset() {
    let ck = Scratch::new("truncated.ck");
    // write a real checkpoint, then chop off its tail
    let written = fim(&[
        "mine",
        "--supp",
        "1",
        "--in",
        &data("valid.fimi"),
        "--checkpoint",
        &ck.path(),
    ]);
    assert_eq!(code(&written), 0, "{}", stderr(&written));
    let full = std::fs::read(&ck.0).expect("read checkpoint");
    // cut inside the catalog header (magic 0..4, version 4..8, name count
    // 8..12) so the error carries the reader's byte-offset context
    let cut = 10.min(full.len());
    std::fs::write(&ck.0, &full[..cut]).expect("truncate checkpoint");
    let out = fim(&[
        "mine",
        "--supp",
        "1",
        "--in",
        &data("valid.fimi"),
        "--resume",
        &ck.path(),
    ]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    let msg = stderr(&out);
    assert!(msg.contains(&ck.path()), "must name the file: {msg}");
    assert!(msg.contains("byte"), "must give offset context: {msg}");
}

#[test]
fn missing_input_file_exits_1() {
    let out = fim(&["mine", "--supp", "1", "--in", "/nonexistent/nowhere.fimi"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
}

//! End-to-end tests of the `fim` binary via `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::{Command, Stdio};

fn fim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fim"))
}

#[test]
fn help_prints_usage() {
    let out = fim().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("fim mine"));
}

#[test]
fn algos_lists_all() {
    let out = fim().arg("algos").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["ista", "carpenter-table", "fpclose", "lcm"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn mine_from_stdin() {
    let mut child = fim()
        .args(["mine", "--supp", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"a b c\na b\nb c\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    // closed sets with supp >= 2: {b}:3, {a b}:2, {b c}:2
    assert!(text.contains("b (3)"), "got: {text}");
    assert!(text.contains("a b (2)"));
    assert!(text.contains("b c (2)"));
    assert_eq!(text.lines().count(), 3);
}

#[test]
fn all_algorithms_agree_via_cli() {
    let dir = std::env::temp_dir().join("fim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.fimi");

    // generate a small preset data set
    let out = fim()
        .args([
            "gen", "--preset", "ncbi60", "--scale", "0.08", "--seed", "3",
        ])
        .args(["--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut results: Vec<String> = Vec::new();
    for algo in [
        "ista",
        "carpenter-table",
        "carpenter-lists",
        "lcm",
        "fpclose",
    ] {
        let out = fim()
            .args(["mine", "--supp", "4", "--algo", algo])
            .args(["--in", data.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}");
        let mut lines: Vec<String> = String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        lines.sort();
        results.push(lines.join("\n"));
    }
    for r in &results[1..] {
        assert_eq!(r, &results[0], "algorithms disagree through the CLI");
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn rules_and_stats_run() {
    let mut child = fim()
        .args(["stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"a b\nb c\na b c\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("transactions       3"));

    let mut child = fim()
        .args(["rules", "--supp", "2", "--conf", "0.5"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"a b\nb c\na b c\na b\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("->"), "expected rules, got: {text}");
}

#[test]
fn unknown_algorithm_fails_cleanly() {
    let mut child = fim()
        .args(["mine", "--supp", "2", "--algo", "bogus"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    // the process may exit (with the error) before stdin is consumed, so
    // a broken pipe here is expected — ignore the write result
    let _ = child.stdin.as_mut().unwrap().write_all(b"a b\n");
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
}

#[test]
fn no_prune_variants() {
    let mut child = fim()
        .args(["mine", "--supp", "1", "--algo", "ista", "--no-prune"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"a b\na c\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("a (2)"));
}

//! Ready-made data sets mirroring the shapes of the paper's evaluation
//! (§4–5). Each preset can be built at full paper scale or scaled down for
//! tests; generation is deterministic in the seed.
//!
//! | preset | paper data | shape (full scale) |
//! |---|---|---|
//! | [`Preset::Yeast`] | Hughes et al. compendium, ±0.2 discretized, genes as items | 300 × 12,632 |
//! | [`Preset::Ncbi60`] | NCBI60 cancer cell lines | 60 × 2,800 |
//! | [`Preset::Thrombin`] | KDD Cup 2001 thrombin, first 64 records | 64 × 139,351 |
//! | [`Preset::Webview`] | BMS-WebView-1, transposed | 497 × 59,602 |

use crate::expression::{ExpressionConfig, ExpressionMatrix};
use crate::quest::{self, QuestConfig};
use crate::sparse::{self, SparseConfig};
use fim_core::TransactionDatabase;

/// The four evaluation data sets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Baker's-yeast expression compendium (Fig. 5).
    Yeast,
    /// NCBI60 cancer cell line panel (Fig. 6).
    Ncbi60,
    /// Thrombin binding, first 64 records (Fig. 7).
    Thrombin,
    /// Transposed BMS-WebView-1 click streams (Fig. 8).
    Webview,
}

impl Preset {
    /// All presets, in figure order.
    pub const ALL: [Preset; 4] = [
        Preset::Yeast,
        Preset::Ncbi60,
        Preset::Thrombin,
        Preset::Webview,
    ];

    /// Stable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Yeast => "yeast",
            Preset::Ncbi60 => "ncbi60",
            Preset::Thrombin => "thrombin",
            Preset::Webview => "webview-tpo",
        }
    }

    /// The figure the preset reproduces.
    pub fn figure(self) -> &'static str {
        match self {
            Preset::Yeast => "Figure 5",
            Preset::Ncbi60 => "Figure 6",
            Preset::Thrombin => "Figure 7",
            Preset::Webview => "Figure 8",
        }
    }

    /// Builds the data set at a given scale (`1.0` = full paper shape;
    /// tests use small fractions). The scale multiplies the item dimension
    /// and, where sensible, the transaction dimension.
    pub fn build(self, scale: f64, seed: u64) -> TransactionDatabase {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(4);
        match self {
            Preset::Yeast => {
                let cfg = ExpressionConfig {
                    genes: s(6316),
                    conditions: s(300),
                    modules: s(40),
                    module_genes: s(260),
                    module_conditions: s(30).max(3),
                    signal: 0.55,
                    noise_sd: 0.115,
                    coherence: 0.85,
                    gene_bias_sd: 0.08,
                    seed,
                };
                ExpressionMatrix::generate(&cfg).discretize_genes_as_items(0.2)
            }
            Preset::Ncbi60 => {
                let cfg = ExpressionConfig {
                    genes: s(1400),
                    conditions: s(60),
                    modules: s(25),
                    module_genes: s(120),
                    module_conditions: s(18).max(3),
                    signal: 0.55,
                    noise_sd: 0.14,
                    coherence: 0.9,
                    gene_bias_sd: 0.35,
                    seed,
                };
                ExpressionMatrix::generate(&cfg).discretize_genes_as_items(0.2)
            }
            Preset::Thrombin => {
                let cfg = SparseConfig {
                    records: s(64),
                    features: s(139_351),
                    common_frac: 0.006,
                    common_prob: (0.25, 0.85),
                    groups: s(120),
                    group_size: s(400),
                    group_prob: 0.03,
                    within_group_prob: 0.8,
                    noise_features: s(150),
                    seed,
                };
                sparse::generate(&cfg)
            }
            Preset::Webview => {
                let cfg = QuestConfig {
                    transactions: s(59_602),
                    items: s(497),
                    avg_transaction_len: 3,
                    patterns: s(600),
                    avg_pattern_len: 4,
                    keep_prob: 0.75,
                    zipf: 0.9,
                    seed,
                };
                quest::generate(&cfg).transpose()
            }
        }
    }

    /// The minimum-support sweep of the corresponding paper figure
    /// (absolute supports, high to low, matching the figures' x axes).
    pub fn paper_sweep(self) -> Vec<u32> {
        match self {
            Preset::Yeast => (2..=16).rev().map(|x| x * 4).collect(), // 64..8
            Preset::Ncbi60 => (46..=54).rev().step_by(2).collect(),   // 54..46
            Preset::Thrombin => (12..=20).rev().map(|x| x * 2).collect(), // 40..24
            Preset::Webview => (1..=10).rev().map(|x| x * 2).collect(), // 20..2
        }
    }
}

/// Full-scale yeast-like data set (paper Fig. 5 stand-in).
pub fn yeast_like(seed: u64) -> TransactionDatabase {
    Preset::Yeast.build(1.0, seed)
}

/// Full-scale NCBI60-like data set (paper Fig. 6 stand-in).
pub fn ncbi60_like(seed: u64) -> TransactionDatabase {
    Preset::Ncbi60.build(1.0, seed)
}

/// Full-scale thrombin-like data set (paper Fig. 7 stand-in).
pub fn thrombin_like(seed: u64) -> TransactionDatabase {
    Preset::Thrombin.build(1.0, seed)
}

/// Full-scale transposed-webview-like data set (paper Fig. 8 stand-in).
pub fn webview_like(seed: u64) -> TransactionDatabase {
    Preset::Webview.build(1.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_shapes_are_few_transactions_many_items() {
        for p in Preset::ALL {
            let db = p.build(0.05, 7);
            assert!(
                db.num_items() >= db.num_transactions(),
                "{}: {} items vs {} transactions",
                p.name(),
                db.num_items(),
                db.num_transactions()
            );
            assert!(db.num_transactions() > 0, "{}", p.name());
            assert!(db.total_occurrences() > 0, "{}", p.name());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Preset::Ncbi60.build(0.05, 3);
        let b = Preset::Ncbi60.build(0.05, 3);
        assert_eq!(a.transactions(), b.transactions());
        let c = Preset::Ncbi60.build(0.05, 4);
        assert_ne!(a.transactions(), c.transactions());
    }

    #[test]
    fn sweeps_are_descending() {
        for p in Preset::ALL {
            let s = p.paper_sweep();
            assert!(!s.is_empty());
            assert!(s.windows(2).all(|w| w[0] > w[1]), "{:?}", s);
            assert!(*s.last().unwrap() >= 1);
        }
    }

    #[test]
    fn names_and_figures() {
        assert_eq!(Preset::Yeast.name(), "yeast");
        assert_eq!(Preset::Webview.figure(), "Figure 8");
        let names: Vec<_> = Preset::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    #[should_panic(expected = "scale must be")]
    fn zero_scale_rejected() {
        let _ = Preset::Yeast.build(0.0, 1);
    }
}

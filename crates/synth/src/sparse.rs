//! Sparse correlated binary feature records (thrombin-like).
//!
//! The KDD Cup 2001 thrombin data describes each molecule by 139,351 binary
//! substructure features at well under 1% density, yet its interesting
//! mining range is at high minimum support (24–40 of 64 records in the
//! paper's Fig. 7). That combination comes from a popularity mixture:
//!
//! * a small fraction of *common* substructures (tiny fragments) that each
//!   molecule contains with moderate-to-high probability — these form the
//!   dense core whose intersections drive the closed sets at high support,
//! * correlated *groups* of rarer substructures (a molecule containing a
//!   large fragment contains its sub-fragments too),
//! * a long tail of near-unique noise features.
//!
//! The generator reproduces all three layers.

use crate::expression::sample_distinct;
use fim_core::TransactionDatabase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the sparse binary generator.
#[derive(Clone, Debug)]
pub struct SparseConfig {
    /// Number of records (transactions).
    pub records: usize,
    /// Number of binary features (items).
    pub features: usize,
    /// Fraction of features in the *common* layer (dense core).
    pub common_frac: f64,
    /// Per-record activation probability range of common features;
    /// each common feature draws a fixed popularity from this range.
    pub common_prob: (f64, f64),
    /// Number of correlated feature groups (rare-fragment layer).
    pub groups: usize,
    /// Features per group.
    pub group_size: usize,
    /// Per-record activation probability of each group.
    pub group_prob: f64,
    /// Probability that an activated group turns on each of its features.
    pub within_group_prob: f64,
    /// Expected number of independent noise features per record.
    pub noise_features: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SparseConfig {
    fn default() -> Self {
        SparseConfig {
            records: 64,
            features: 139_351,
            common_frac: 0.006,
            common_prob: (0.25, 0.85),
            groups: 120,
            group_size: 400,
            group_prob: 0.03,
            within_group_prob: 0.8,
            noise_features: 150,
            seed: 1,
        }
    }
}

/// Generates a sparse correlated binary database.
pub fn generate(config: &SparseConfig) -> TransactionDatabase {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_feat = config.features.max(1);

    // common layer: fixed per-feature popularity
    let n_common = ((n_feat as f64 * config.common_frac) as usize).min(n_feat);
    let common: Vec<(usize, f64)> = sample_distinct(&mut rng, n_feat, n_common)
        .into_iter()
        .map(|f| {
            let (lo, hi) = config.common_prob;
            (f, rng.gen_range(lo..hi.max(lo + 1e-9)))
        })
        .collect();

    // group layer
    let n_groups = config.groups.max(1);
    let group_size = config.group_size.min(n_feat).max(1);
    let groups: Vec<Vec<usize>> = (0..n_groups)
        .map(|_| sample_distinct(&mut rng, n_feat, group_size))
        .collect();

    let mut txs: Vec<Vec<u32>> = Vec::with_capacity(config.records);
    for _ in 0..config.records {
        let mut t: Vec<u32> = Vec::new();
        for &(f, p) in &common {
            if rng.gen_bool(p) {
                t.push(f as u32);
            }
        }
        for g in &groups {
            if !rng.gen_bool(config.group_prob) {
                continue;
            }
            for &f in g {
                if rng.gen_bool(config.within_group_prob) {
                    t.push(f as u32);
                }
            }
        }
        for _ in 0..config.noise_features {
            t.push(rng.gen_range(0..n_feat) as u32);
        }
        t.sort_unstable();
        t.dedup();
        txs.push(t);
    }
    TransactionDatabase::from_codes_with_base(txs, n_feat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseConfig {
        SparseConfig {
            records: 32,
            features: 4000,
            common_frac: 0.01,
            common_prob: (0.3, 0.8),
            groups: 12,
            group_size: 80,
            group_prob: 0.1,
            within_group_prob: 0.8,
            noise_features: 20,
            seed: 5,
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.transactions(), b.transactions());
    }

    #[test]
    fn shape_and_sparsity() {
        let db = generate(&small());
        assert_eq!(db.num_transactions(), 32);
        assert_eq!(db.num_items(), 4000);
        let density =
            db.total_occurrences() as f64 / (db.num_transactions() * db.num_items()) as f64;
        assert!(density < 0.2, "sparse data expected, density {density}");
        assert!(
            density > 0.002,
            "records must not be empty, density {density}"
        );
    }

    #[test]
    fn common_layer_creates_high_support_items() {
        let db = generate(&small());
        let n = db.num_transactions() as u32;
        let freq = db.item_frequencies();
        let dense = freq.iter().filter(|&&f| f * 2 >= n).count();
        // ~1% of 4000 features draw popularity in (0.3, 0.8); roughly half
        // should exceed 50% support
        assert!(dense > 5, "dense core expected, got {dense} items >= n/2");
    }

    #[test]
    fn groups_create_correlation() {
        // two features of the same group should co-occur far more often
        // than independence at this density predicts
        let cfg = SparseConfig {
            group_prob: 0.3,
            common_frac: 0.0,
            noise_features: 0,
            ..small()
        };
        let db = generate(&cfg);
        let freq = db.item_frequencies();
        let mut by_freq: Vec<(u32, u32)> = freq
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i as u32))
            .collect();
        by_freq.sort_unstable_by(|a, b| b.cmp(a));
        let (f0, i0) = by_freq[0];
        assert!(f0 > 0);
        let mut best_joint = 0u32;
        for &(_, i1) in by_freq[1..40].iter() {
            best_joint = best_joint.max(db.support(&fim_core::ItemSet::from([i0, i1])));
        }
        assert!(
            best_joint as f64 >= 0.4 * f0 as f64,
            "correlated features expected (best joint {best_joint}, f0 {f0})"
        );
    }

    #[test]
    fn default_matches_thrombin_shape() {
        let cfg = SparseConfig::default();
        assert_eq!(cfg.records, 64);
        assert_eq!(cfg.features, 139_351);
    }
}

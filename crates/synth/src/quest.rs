//! IBM-Quest-style market-basket generator (Agrawal & Srikant, VLDB 1994).
//!
//! Baskets are built from a pool of *maximal potential patterns* — small
//! item sets drawn with Zipf-skewed item popularity — that are sampled,
//! possibly corrupted (a random suffix dropped), and concatenated until the
//! basket reaches its target size. Consecutive patterns are correlated by
//! reusing items of the previously chosen pattern. This mirrors the
//! click-stream structure of the BMS-WebView-1 benchmark the paper uses in
//! transposed form.

use fim_core::TransactionDatabase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Quest-style generator.
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// Number of transactions (baskets).
    pub transactions: usize,
    /// Number of distinct items (products).
    pub items: usize,
    /// Average basket size (Poisson-ish).
    pub avg_transaction_len: usize,
    /// Number of potential patterns in the pool.
    pub patterns: usize,
    /// Average pattern length.
    pub avg_pattern_len: usize,
    /// Probability of keeping each pattern item (1 − corruption level).
    pub keep_prob: f64,
    /// Zipf skew of item popularity (0 = uniform; ~0.8 is web-like).
    pub zipf: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            transactions: 10_000,
            items: 500,
            avg_transaction_len: 3,
            patterns: 400,
            avg_pattern_len: 4,
            keep_prob: 0.75,
            zipf: 0.8,
            seed: 1,
        }
    }
}

/// Generates a basket database from the configuration.
pub fn generate(config: &QuestConfig) -> TransactionDatabase {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_items = config.items.max(1);

    // Zipf-skewed popularity: cumulative weights over a fixed permutation
    let weights: Vec<f64> = (0..n_items)
        .map(|r| 1.0 / ((r + 1) as f64).powf(config.zipf))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(n_items);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let draw_item = |rng: &mut StdRng| -> u32 {
        let x: f64 = rng.gen();
        cumulative.partition_point(|&c| c < x).min(n_items - 1) as u32
    };

    // pattern pool
    let mut patterns: Vec<Vec<u32>> = Vec::with_capacity(config.patterns);
    let mut prev: Vec<u32> = Vec::new();
    for _ in 0..config.patterns.max(1) {
        let len = poissonish(&mut rng, config.avg_pattern_len).max(1);
        let mut p: Vec<u32> = Vec::with_capacity(len);
        // correlation: reuse up to half of the previous pattern
        for &it in prev.iter().take(len / 2) {
            if rng.gen_bool(0.5) {
                p.push(it);
            }
        }
        while p.len() < len {
            p.push(draw_item(&mut rng));
        }
        p.sort_unstable();
        p.dedup();
        prev = p.clone();
        patterns.push(p);
    }

    // pattern popularity is itself skewed (exponential-ish)
    let pat_weights: Vec<f64> = (0..patterns.len())
        .map(|r| (-(r as f64) / (patterns.len() as f64 / 3.0)).exp())
        .collect();
    let pat_total: f64 = pat_weights.iter().sum();
    let mut pat_cumulative = Vec::with_capacity(patterns.len());
    let mut acc = 0.0;
    for w in &pat_weights {
        acc += w / pat_total;
        pat_cumulative.push(acc);
    }

    let mut txs: Vec<Vec<u32>> = Vec::with_capacity(config.transactions);
    for _ in 0..config.transactions {
        let target = poissonish(&mut rng, config.avg_transaction_len).max(1);
        let mut t: Vec<u32> = Vec::with_capacity(target + 4);
        while t.len() < target {
            let x: f64 = rng.gen();
            let pi = pat_cumulative
                .partition_point(|&c| c < x)
                .min(patterns.len() - 1);
            for &item in &patterns[pi] {
                if rng.gen_bool(config.keep_prob) {
                    t.push(item);
                }
            }
            // occasional random noise item
            if rng.gen_bool(0.1) {
                t.push(draw_item(&mut rng));
            }
        }
        t.sort_unstable();
        t.dedup();
        txs.push(t);
    }
    TransactionDatabase::from_codes_with_base(txs, n_items)
}

/// Cheap Poisson-like sampler: geometric mixture around the mean.
fn poissonish(rng: &mut StdRng, mean: usize) -> usize {
    if mean == 0 {
        return 0;
    }
    // sum of `mean` Bernoulli(0.5) doubled approximates the mean with
    // binomial variance — adequate for workload shaping
    (0..2 * mean).filter(|_| rng.gen_bool(0.5)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = QuestConfig {
            transactions: 100,
            items: 50,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.transactions(), b.transactions());
    }

    #[test]
    fn shape_matches_config() {
        let cfg = QuestConfig {
            transactions: 200,
            items: 80,
            avg_transaction_len: 5,
            ..Default::default()
        };
        let db = generate(&cfg);
        assert_eq!(db.num_transactions(), 200);
        assert_eq!(db.num_items(), 80);
        let avg = db.total_occurrences() as f64 / 200.0;
        assert!(avg > 1.0 && avg < 25.0, "average length {avg} out of band");
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = QuestConfig {
            transactions: 2000,
            items: 100,
            zipf: 1.0,
            ..Default::default()
        };
        let db = generate(&cfg);
        let freq = db.item_frequencies();
        let max = *freq.iter().max().unwrap() as f64;
        let nonzero = freq.iter().filter(|&&f| f > 0).count() as f64;
        let mean = freq.iter().sum::<u32>() as f64 / nonzero;
        assert!(
            max > 3.0 * mean,
            "Zipf skew expected (max {max}, mean {mean})"
        );
    }

    #[test]
    fn transposition_gives_few_transactions_many_items() {
        let cfg = QuestConfig {
            transactions: 3000,
            items: 60,
            ..Default::default()
        };
        let tdb = generate(&cfg).transpose();
        assert_eq!(tdb.num_transactions(), 60);
        assert_eq!(tdb.num_items(), 3000);
    }

    #[test]
    fn no_empty_item_codes_out_of_base() {
        let cfg = QuestConfig {
            transactions: 50,
            items: 10,
            ..Default::default()
        };
        let db = generate(&cfg);
        for t in db.transactions() {
            assert!(t.iter().all(|i| i < 10));
        }
    }
}

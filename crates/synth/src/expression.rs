//! Latent-block gene-expression matrices and their discretization.
//!
//! The paper's primary data (§4) are DNA-microarray compendia: a real-valued
//! matrix of log expression values, genes × experimental conditions, which
//! is turned into a transaction database by thresholding: values > 0.2 are
//! "over-expressed", values < −0.2 "under-expressed", and everything in
//! between neither. Each condition `c` contributes two possible items:
//! `2c` (over) and `2c + 1` (under).
//!
//! The generator plants co-expression *modules* — blocks of genes that are
//! jointly up- or down-regulated across a subset of conditions — on top of
//! Gaussian background noise. This is the standard latent-block model of
//! expression data and produces exactly the overlap structure that makes
//! transaction intersection profitable.

use fim_core::TransactionDatabase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the latent-block expression generator.
#[derive(Clone, Debug)]
pub struct ExpressionConfig {
    /// Number of genes (matrix rows).
    pub genes: usize,
    /// Number of experimental conditions (matrix columns).
    pub conditions: usize,
    /// Number of planted co-expression modules.
    pub modules: usize,
    /// Genes per module (each module draws this many distinct genes).
    pub module_genes: usize,
    /// Conditions per module.
    pub module_conditions: usize,
    /// Magnitude of the planted signal (added or subtracted per module).
    pub signal: f64,
    /// Standard deviation of the Gaussian background noise.
    pub noise_sd: f64,
    /// Probability that a module cell keeps its signal (1 − dropout).
    pub coherence: f64,
    /// Standard deviation of a per-gene baseline offset, modelling
    /// condition-independent expression bias (dye bias, housekeeping
    /// genes). This is what makes real compendium data *dense* after
    /// thresholding: a gene with a strong baseline is over- or
    /// under-expressed in most conditions.
    pub gene_bias_sd: f64,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl Default for ExpressionConfig {
    fn default() -> Self {
        ExpressionConfig {
            genes: 1000,
            conditions: 60,
            modules: 12,
            module_genes: 80,
            module_conditions: 12,
            signal: 0.6,
            noise_sd: 0.12,
            coherence: 0.9,
            gene_bias_sd: 0.1,
            seed: 1,
        }
    }
}

/// A genes × conditions matrix of log expression values.
#[derive(Clone, Debug)]
pub struct ExpressionMatrix {
    genes: usize,
    conditions: usize,
    /// Row-major values, `values[g * conditions + c]`.
    values: Vec<f64>,
}

impl ExpressionMatrix {
    /// Generates a matrix from the latent-block model.
    pub fn generate(config: &ExpressionConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let (g, c) = (config.genes, config.conditions);
        let mut values = vec![0.0f64; g * c];
        // Gaussian background noise via Box–Muller (rand's distributions
        // module stays out of our dependency budget)
        for v in values.iter_mut() {
            *v = gaussian(&mut rng) * config.noise_sd;
        }
        // per-gene baseline offsets (see `gene_bias_sd`)
        if config.gene_bias_sd > 0.0 {
            for gene in 0..g {
                let bias = gaussian(&mut rng) * config.gene_bias_sd;
                for v in &mut values[gene * c..(gene + 1) * c] {
                    *v += bias;
                }
            }
        }
        // plant modules
        for _ in 0..config.modules {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let genes = sample_distinct(&mut rng, g, config.module_genes.min(g));
            let conds = sample_distinct(&mut rng, c, config.module_conditions.min(c));
            for &gene in &genes {
                // per-gene sign flips model genes that are anti-correlated
                // with their module (a common biological pattern)
                let gene_sign = if rng.gen_bool(0.85) { sign } else { -sign };
                for &cond in &conds {
                    if rng.gen_bool(config.coherence) {
                        values[gene * c + cond] += gene_sign * config.signal;
                    }
                }
            }
        }
        ExpressionMatrix {
            genes: g,
            conditions: c,
            values,
        }
    }

    /// Builds a matrix from explicit values (row-major genes × conditions).
    pub fn from_values(genes: usize, conditions: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), genes * conditions);
        ExpressionMatrix {
            genes,
            conditions,
            values,
        }
    }

    /// Number of genes (rows).
    pub fn genes(&self) -> usize {
        self.genes
    }

    /// Number of conditions (columns).
    pub fn conditions(&self) -> usize {
        self.conditions
    }

    /// One expression value.
    pub fn value(&self, gene: usize, condition: usize) -> f64 {
        self.values[gene * self.conditions + condition]
    }

    /// Row-major raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Discretizes with the paper's thresholds: genes become transactions,
    /// conditions become items; condition `c` yields item `2c` when the
    /// gene is over-expressed (`value > threshold`) and item `2c + 1` when
    /// under-expressed (`value < -threshold`).
    ///
    /// This is the *many transactions, few items* direction; transpose the
    /// result (or call [`ExpressionMatrix::discretize_genes_as_items`]) for
    /// the direction the intersection algorithms target.
    pub fn discretize(&self, threshold: f64) -> TransactionDatabase {
        let mut txs: Vec<Vec<u32>> = Vec::with_capacity(self.genes);
        for gene in 0..self.genes {
            let mut t = Vec::new();
            for cond in 0..self.conditions {
                let v = self.value(gene, cond);
                if v > threshold {
                    t.push(2 * cond as u32);
                } else if v < -threshold {
                    t.push(2 * cond as u32 + 1);
                }
            }
            txs.push(t);
        }
        TransactionDatabase::from_codes_with_base(txs, 2 * self.conditions)
    }

    /// The dual discretization (paper §4): conditions become transactions
    /// and genes become items — the *few transactions, very many items*
    /// shape that IsTa and Carpenter are designed for. Gene `g` yields item
    /// `2g` (over-expressed) or `2g + 1` (under-expressed).
    pub fn discretize_genes_as_items(&self, threshold: f64) -> TransactionDatabase {
        let mut txs: Vec<Vec<u32>> = Vec::with_capacity(self.conditions);
        for cond in 0..self.conditions {
            let mut t = Vec::new();
            for gene in 0..self.genes {
                let v = self.value(gene, cond);
                if v > threshold {
                    t.push(2 * gene as u32);
                } else if v < -threshold {
                    t.push(2 * gene as u32 + 1);
                }
            }
            txs.push(t);
        }
        TransactionDatabase::from_codes_with_base(txs, 2 * self.genes)
    }
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::EPSILON {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Samples `k` distinct values from `0..n` (partial Fisher–Yates).
pub(crate) fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ExpressionConfig {
            genes: 50,
            conditions: 10,
            ..Default::default()
        };
        let a = ExpressionMatrix::generate(&cfg);
        let b = ExpressionMatrix::generate(&cfg);
        assert_eq!(a.values(), b.values());
        let c = ExpressionMatrix::generate(&ExpressionConfig { seed: 2, ..cfg });
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn dimensions() {
        let cfg = ExpressionConfig {
            genes: 30,
            conditions: 7,
            modules: 2,
            module_genes: 10,
            module_conditions: 3,
            ..Default::default()
        };
        let m = ExpressionMatrix::generate(&cfg);
        assert_eq!(m.genes(), 30);
        assert_eq!(m.conditions(), 7);
        assert_eq!(m.values().len(), 210);
    }

    #[test]
    fn modules_create_signal() {
        let cfg = ExpressionConfig {
            genes: 200,
            conditions: 40,
            modules: 6,
            module_genes: 60,
            module_conditions: 10,
            signal: 0.6,
            noise_sd: 0.05,
            coherence: 1.0,
            gene_bias_sd: 0.0,
            seed: 7,
        };
        let m = ExpressionMatrix::generate(&cfg);
        let strong = m.values().iter().filter(|v| v.abs() > 0.2).count();
        // with tiny noise, essentially only module cells pass the threshold
        assert!(strong > 500, "planted modules must produce signal");
        let frac = strong as f64 / m.values().len() as f64;
        assert!(frac < 0.5, "signal must stay sparse, got {frac}");
    }

    #[test]
    fn discretize_directions_are_transposes() {
        let m = ExpressionMatrix::generate(&ExpressionConfig {
            genes: 40,
            conditions: 12,
            ..Default::default()
        });
        let by_gene = m.discretize(0.2);
        let by_cond = m.discretize_genes_as_items(0.2);
        assert_eq!(by_gene.num_transactions(), 40);
        assert_eq!(by_cond.num_transactions(), 12);
        // occurrence totals must match (same thresholded cells)
        assert_eq!(by_gene.total_occurrences(), by_cond.total_occurrences());
    }

    #[test]
    fn over_and_under_items_are_disjoint() {
        let m = ExpressionMatrix::from_values(2, 2, vec![0.5, -0.5, 0.1, 0.0]);
        let db = m.discretize(0.2);
        // gene 0: cond 0 over (item 0), cond 1 under (item 3)
        assert_eq!(db.transactions()[0], fim_core::ItemSet::from([0, 3]));
        // gene 1: nothing passes the threshold
        assert!(db.transactions()[1].is_empty());
        assert_eq!(db.num_items(), 4);
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let s = sample_distinct(&mut rng, 10, 7);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 7);
            assert!(d.iter().all(|&x| x < 10));
        }
    }
}

//! # fim-synth
//!
//! Synthetic data generators for the benchmark harness.
//!
//! The paper evaluates on four data sets (yeast compendium, NCBI60,
//! thrombin, transposed BMS-WebView-1) that are not redistributable; this
//! crate generates statistical stand-ins that preserve the property all of
//! the paper's arguments rest on: **few transactions, very many items, and
//! heavy overlap structure**, so that item set enumeration explodes at low
//! minimum support while the number of distinct transaction intersections
//! stays moderate. See DESIGN.md §4 for the substitution rationale.
//!
//! * [`expression`] — latent-block gene-expression matrices with the ±0.2
//!   log-expression discretization used by the paper (§4),
//! * [`quest`] — IBM-Quest-style market-basket transactions (for the
//!   BMS-WebView-1 stand-in, used transposed),
//! * [`sparse`] — sparse correlated binary feature records (thrombin-like),
//! * [`presets`] — the four ready-made data sets with paper-matching shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expression;
pub mod presets;
pub mod quest;
pub mod sparse;

pub use expression::{ExpressionConfig, ExpressionMatrix};
pub use presets::{ncbi60_like, thrombin_like, webview_like, yeast_like, Preset};
pub use quest::QuestConfig;
pub use sparse::SparseConfig;

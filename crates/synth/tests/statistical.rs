//! Statistical shape tests for the synthetic generators: the presets must
//! actually exhibit the few-transactions/many-items structure the paper's
//! evaluation depends on, at every scale and seed.

use fim_core::{ItemOrder, RecodedDatabase, TransactionOrder};
use fim_synth::Preset;

#[test]
fn presets_have_dense_mineable_core_at_paper_sweep() {
    // at the top of each scaled paper sweep there must be a non-trivial
    // number of frequent items, otherwise the sweeps mine nothing
    for p in Preset::ALL {
        let scale = 0.25;
        let db = p.build(scale, 1);
        let sweep: Vec<u32> = p
            .paper_sweep()
            .into_iter()
            .map(|v| ((v as f64 * scale).round() as u32).max(1))
            .collect();
        let top = sweep[0];
        let freq = db.item_frequencies();
        let frequent_items = freq.iter().filter(|&&f| f >= top).count();
        assert!(
            frequent_items >= 10,
            "{}: only {frequent_items} items reach the top sweep support {top}",
            p.name()
        );
    }
}

#[test]
fn items_dominate_transactions_at_every_scale() {
    for p in Preset::ALL {
        for scale in [0.05, 0.25] {
            let db = p.build(scale, 3);
            assert!(
                db.num_items() >= 4 * db.num_transactions(),
                "{} at scale {scale}: {} items vs {} transactions",
                p.name(),
                db.num_items(),
                db.num_transactions()
            );
        }
    }
}

#[test]
fn different_seeds_differ_same_seed_agrees() {
    for p in Preset::ALL {
        let a = p.build(0.05, 1);
        let b = p.build(0.05, 1);
        let c = p.build(0.05, 2);
        assert_eq!(a.transactions(), b.transactions(), "{}", p.name());
        assert_ne!(a.transactions(), c.transactions(), "{}", p.name());
    }
}

#[test]
fn recoding_presets_leaves_enough_structure() {
    // after the minsupp filter the database must keep multiple items per
    // transaction, or closed sets degenerate to singletons
    for p in Preset::ALL {
        let db = p.build(0.1, 5);
        let sweep_mid = {
            let s: Vec<u32> = p
                .paper_sweep()
                .into_iter()
                .map(|v| ((v as f64 * 0.1).round() as u32).max(1))
                .collect();
            s[s.len() / 2]
        };
        let recoded = RecodedDatabase::prepare(
            &db,
            sweep_mid,
            ItemOrder::AscendingFrequency,
            TransactionOrder::AscendingSize,
        );
        assert!(recoded.num_transactions() > 0, "{}", p.name());
        let avg = recoded
            .transactions()
            .iter()
            .map(|t| t.len())
            .sum::<usize>() as f64
            / recoded.num_transactions() as f64;
        assert!(
            avg >= 2.0,
            "{}: average recoded transaction width {avg} too thin",
            p.name()
        );
    }
}

#[test]
fn thrombin_is_sparse_overall_but_dense_in_core() {
    let db = Preset::Thrombin.build(0.25, 1);
    let density = db.total_occurrences() as f64 / (db.num_transactions() * db.num_items()) as f64;
    assert!(density < 0.03, "thrombin must be sparse, density {density}");
    let n = db.num_transactions() as u32;
    let dense_items = db
        .item_frequencies()
        .iter()
        .filter(|&&f| 2 * f >= n)
        .count();
    assert!(
        dense_items >= 20,
        "thrombin needs a dense common core, got {dense_items}"
    );
}

#[test]
fn webview_transposition_shape() {
    let db = Preset::Webview.build(0.1, 1);
    // transactions = products, items = sessions; session supports are tiny
    let freq = db.item_frequencies();
    let max_f = freq.iter().copied().max().unwrap_or(0);
    assert!(
        max_f <= db.num_transactions() as u32 / 2,
        "sessions must not span most products (max {max_f})"
    );
}

//! Property tests: every enumeration baseline must agree with the
//! brute-force reference miner on random databases.

use fim_baseline::{
    AprioriMiner, DEclatMiner, EclatMiner, FpCloseMiner, LcmMiner, NaiveCumulativeMiner, SamMiner,
};
use fim_core::reference::mine_reference;
use fim_core::{ClosedMiner, RecodedDatabase};
use proptest::collection::vec;
use proptest::prelude::*;

fn small_db() -> impl Strategy<Value = RecodedDatabase> {
    (2u32..=9).prop_flat_map(|num_items| {
        vec(vec(0..num_items, 0..=num_items as usize), 0..12)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, num_items))
    })
}

macro_rules! baseline_matches {
    ($name:ident, $miner:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(160))]
            #[test]
            fn $name(db in small_db(), minsupp in 1u32..6) {
                let want = mine_reference(&db, minsupp);
                let got = $miner.mine(&db, minsupp).canonicalized();
                prop_assert_eq!(got, want);
            }
        }
    };
}

baseline_matches!(fpclose_matches_reference, FpCloseMiner);
baseline_matches!(lcm_matches_reference, LcmMiner);
baseline_matches!(eclat_matches_reference, EclatMiner::default());
baseline_matches!(declat_matches_reference, DEclatMiner::default());
baseline_matches!(
    eclat_bitset_matches_reference,
    EclatMiner::with_rep(fim_core::Representation::Bitset)
);
baseline_matches!(
    eclat_gallop_matches_reference,
    EclatMiner::with_rep(fim_core::Representation::Gallop)
);
baseline_matches!(
    declat_bitset_matches_reference,
    DEclatMiner::with_rep(fim_core::Representation::Bitset)
);
baseline_matches!(
    declat_gallop_matches_reference,
    DEclatMiner::with_rep(fim_core::Representation::Gallop)
);
baseline_matches!(sam_matches_reference, SamMiner);
baseline_matches!(apriori_matches_reference, AprioriMiner);
baseline_matches!(naive_matches_reference, NaiveCumulativeMiner);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense databases stress the closure/perfect-extension paths.
    #[test]
    fn dense_db_all_baselines(db in (3u32..=7).prop_flat_map(|m| {
        vec(vec(0..m, (m as usize / 2)..=m as usize), 1..10)
            .prop_map(move |txs| RecodedDatabase::from_dense(txs, m))
    }), minsupp in 1u32..4) {
        let want = mine_reference(&db, minsupp);
        let eclat = EclatMiner::default();
        let declat = DEclatMiner::default();
        let miners: [&dyn ClosedMiner; 7] = [
            &FpCloseMiner, &LcmMiner, &eclat, &declat, &SamMiner, &AprioriMiner,
            &NaiveCumulativeMiner,
        ];
        for m in miners {
            let got = m.mine(&db, minsupp).canonicalized();
            prop_assert_eq!(&got, &want, "miner {}", m.name());
        }
    }
}

//! SaM — Split and Merge (Borgelt & Wang, IFSA/EUSFLAT 2009), cited by the
//! paper (§2.2) as the purely *horizontal* representative of the
//! divide-and-conquer enumeration scheme.
//!
//! The conditional database is a single array of `(weight, suffix)` pairs,
//! kept sorted lexicographically. One step picks the leading item `e` of
//! the first entry, **splits** the array into the entries starting with `e`
//! (stripping `e` — the conditional database of the include branch) and the
//! rest, and then **merges** the stripped entries back into the rest
//! (combining equal suffixes by adding weights — the database of the
//! exclude branch). The closed sets are obtained by the standard
//! subsumption filter, like for the other all-frequent enumerators.

use crate::filter::filter_closed;
use fim_core::{ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase};

/// The SaM-based closed-set miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct SamMiner;

type Entry = (u32, Vec<Item>);

impl ClosedMiner for SamMiner {
    fn name(&self) -> &'static str {
        "sam"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        // combine duplicate transactions up front
        let mut array: Vec<Entry> = db
            .transactions()
            .iter()
            .map(|t| (1u32, t.to_vec()))
            .collect();
        array.sort_unstable_by(|a, b| a.1.cmp(&b.1));
        array = combine_runs(array);
        let mut candidates = Vec::new();
        sam(&array, &mut Vec::new(), minsupp, &mut candidates);
        filter_closed(candidates)
    }
}

/// Merges adjacent equal suffixes of a lexicographically sorted array.
fn combine_runs(array: Vec<Entry>) -> Vec<Entry> {
    let mut out: Vec<Entry> = Vec::with_capacity(array.len());
    for (w, t) in array {
        match out.last_mut() {
            Some((lw, lt)) if *lt == t => *lw += w,
            _ => out.push((w, t)),
        }
    }
    out
}

/// One split-and-merge recursion step over a sorted conditional database.
fn sam(array: &[Entry], prefix: &mut Vec<Item>, minsupp: u32, out: &mut Vec<FoundSet>) {
    if array.is_empty() {
        return;
    }
    // quick bound: total weight below minsupp cannot produce output
    let total: u32 = array.iter().map(|(w, _)| w).sum();
    if total < minsupp {
        return;
    }
    // split item: the smallest leading item (the array is sorted, so it is
    // the leading item of the first entry)
    let e = array[0].1[0];
    let mut split: Vec<Entry> = Vec::new();
    let mut rest: Vec<Entry> = Vec::new();
    let mut support = 0u32;
    for (w, t) in array {
        if t[0] == e {
            support += w;
            if t.len() > 1 {
                split.push((*w, t[1..].to_vec()));
            }
        } else {
            rest.push((*w, t.clone()));
        }
    }
    if support >= minsupp {
        prefix.push(e);
        out.push(FoundSet::new(ItemSet::new(prefix.clone()), support));
        sam(&split, prefix, minsupp, out);
        prefix.pop();
    }
    // merge the stripped entries into the rest (both are sorted)
    let merged = merge(split, rest);
    sam(&merged, prefix, minsupp, out);
}

/// Merge two sorted entry arrays, adding weights of equal suffixes.
fn merge(a: Vec<Entry>, b: Vec<Entry>) -> Vec<Entry> {
    let mut out: Vec<Entry> = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        let take_a = match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => match x.1.cmp(&y.1) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => {
                    let (wa, t) = ia.next().unwrap();
                    let (wb, _) = ib.next().unwrap();
                    out.push((wa + wb, t));
                    continue;
                }
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_a {
            out.push(ia.next().unwrap());
        } else {
            out.push(ib.next().unwrap());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = SamMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn merge_combines_weights() {
        let a = vec![(1u32, vec![1, 2]), (2, vec![3])];
        let b = vec![(3u32, vec![1, 2]), (1, vec![2])];
        let m = merge(a, b);
        assert_eq!(m, vec![(4, vec![1, 2]), (1, vec![2]), (2, vec![3])]);
    }

    #[test]
    fn combine_runs_merges_duplicates() {
        let a = vec![(1u32, vec![0]), (1, vec![0]), (1, vec![1])];
        assert_eq!(combine_runs(a), vec![(2, vec![0]), (1, vec![1])]);
    }

    #[test]
    fn duplicate_transactions() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1]; 4], 2);
        let got = SamMiner.mine(&db, 2).canonicalized();
        assert_eq!(got.len(), 1);
        assert_eq!(got.sets[0].support, 4);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 3);
        assert!(SamMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(SamMiner.name(), "sam");
    }
}

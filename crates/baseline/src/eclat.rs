//! Eclat (Zaki et al., KDD 1997): depth-first search over the item set
//! lattice with a vertical (tid-list) database representation.
//!
//! This implementation enumerates all frequent item sets via tid-list
//! intersection — the divide-and-conquer scheme of paper §2.2 — with
//! perfect-extension pruning (§2.2), and then filters the output down to the
//! closed sets. Perfect extensions are collected rather than recursed on:
//! all `2^|E|` supersets they span share the prefix's support, and only the
//! maximal one (prefix ∪ all perfect extensions) can be closed, so the
//! expansion is never materialized.

use crate::filter::filter_closed;
use fim_core::{
    itemset::intersect_into, ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase,
    Tid, TidLists,
};

/// The Eclat-based closed-set miner (frequent enumeration + closed filter).
#[derive(Clone, Copy, Debug, Default)]
pub struct EclatMiner;

struct Ctx<'a> {
    minsupp: u32,
    candidates: Vec<FoundSet>,
    lists: &'a TidLists,
}

impl ClosedMiner for EclatMiner {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let lists = TidLists::from_database(db);
        let mut ctx = Ctx {
            minsupp,
            candidates: Vec::new(),
            lists: &lists,
        };
        // items with their full tid lists, ascending item order
        let frontier: Vec<(Item, Vec<Tid>)> = (0..db.num_items())
            .filter(|&i| lists.item_support(i) >= minsupp)
            .map(|i| (i, lists.list(i).to_vec()))
            .collect();
        recurse(&mut ctx, &[], &frontier);
        filter_closed(ctx.candidates)
    }
}

/// Processes the conditional database `frontier` (items with their tid lists
/// restricted to transactions containing `prefix`).
fn recurse(ctx: &mut Ctx<'_>, prefix: &[Item], frontier: &[(Item, Vec<Tid>)]) {
    let mut buf: Vec<Tid> = Vec::new();
    for (idx, (item, tids)) in frontier.iter().enumerate() {
        // the item set prefix ∪ {item} is frequent with support |tids|
        let mut items: Vec<Item> = prefix.to_vec();
        items.push(*item);

        // build the conditional frontier and collect perfect extensions
        let mut next: Vec<(Item, Vec<Tid>)> = Vec::new();
        let mut perfect: Vec<Item> = Vec::new();
        for (other, other_tids) in &frontier[idx + 1..] {
            intersect_into(tids, other_tids, &mut buf);
            if buf.len() == tids.len() {
                perfect.push(*other);
            } else if buf.len() >= ctx.minsupp as usize {
                next.push((*other, buf.clone()));
            }
        }

        if perfect.is_empty() {
            ctx.candidates.push(FoundSet::new(
                ItemSet::new(items.clone()),
                tids.len() as u32,
            ));
            if !next.is_empty() {
                recurse(ctx, &items, &next);
            }
        } else {
            // only prefix ∪ {item} ∪ perfect can be closed among the 2^|E|
            // same-support supersets
            let mut maximal = items.clone();
            maximal.extend_from_slice(&perfect);
            ctx.candidates.push(FoundSet::new(
                ItemSet::new(maximal.clone()),
                tids.len() as u32,
            ));
            if !next.is_empty() {
                // the perfect extensions belong to every set mined below
                maximal.sort_unstable();
                recurse(ctx, &maximal, &next);
            }
        }
    }
    let _ = &ctx.lists; // lists kept for potential diffsets extension
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = EclatMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn perfect_extension_collapse_keeps_closed_sets() {
        // every transaction contains {0,1}: perfect extension chain
        let db = RecodedDatabase::from_dense(vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 3]], 4);
        let want = mine_reference(&db, 1);
        let got = EclatMiner.mine(&db, 1).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 3);
        assert!(EclatMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(EclatMiner.name(), "eclat");
    }
}

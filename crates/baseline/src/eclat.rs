//! Eclat (Zaki et al., KDD 1997): depth-first search over the item set
//! lattice with a vertical (tid-list) database representation.
//!
//! This implementation enumerates all frequent item sets via tid-list
//! intersection — the divide-and-conquer scheme of paper §2.2 — with
//! perfect-extension pruning (§2.2), and then filters the output down to the
//! closed sets. Perfect extensions are collected rather than recursed on:
//! all `2^|E|` supersets they span share the prefix's support, and only the
//! maximal one (prefix ∪ all perfect extensions) can be closed, so the
//! expansion is never materialized.
//!
//! The tid sets are carried behind a [`TidSetKernel`], so the same search
//! runs on sorted lists with linear merges (`eclat`), galloping merges
//! (`eclat-gallop`), or packed bitsets with word-AND + popcount
//! (`eclat-bitset`) — selected by the [`Representation`] field, all
//! output-identical.

use crate::filter::{apply_constraints_owned, candidate_prunable, filter_closed, subtree_prunable};
use crate::kernel::{with_kernel, TidSetKernel};
use fim_core::{
    checkpoint, BitCover, Budget, ClosedMiner, ConstraintSet, FoundSet, Governor, Item, ItemSet,
    MineOutcome, MiningResult, Progress, RecodedDatabase, Representation, TidLists, TripReason,
};
use fim_obs::{Counter, Counters};

/// The Eclat-based closed-set miner (frequent enumeration + closed filter).
#[derive(Clone, Copy, Debug, Default)]
pub struct EclatMiner {
    /// Physical tid-set layout driving the lattice walk. Output-invariant.
    pub rep: Representation,
}

impl EclatMiner {
    /// A miner with an explicit tid-set representation.
    pub fn with_rep(rep: Representation) -> Self {
        EclatMiner { rep }
    }
}

struct Ctx {
    minsupp: u32,
    candidates: Vec<FoundSet>,
    gov: Option<Governor>,
    counters: Counters,
    /// Pushed constraints (dense codes, exclusion already projected away).
    /// Max-size is deliberately *not* pushed here — see
    /// [`candidate_prunable`] — it is applied after [`filter_closed`].
    cs: Option<ConstraintSet>,
}

impl ClosedMiner for EclatMiner {
    fn name(&self) -> &'static str {
        match self.rep {
            Representation::Scalar => "eclat",
            Representation::Bitset => "eclat-bitset",
            Representation::Gallop => "eclat-gallop",
        }
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        self.mine_with_stats(db, minsupp).0
    }

    fn supports_constraints(&self) -> bool {
        true
    }

    fn mine_constrained(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> MiningResult {
        self.mine_constrained_with_stats(db, minsupp, constraints).0
    }

    /// Governed Eclat. On a trip, the candidate list covers only part of
    /// the lattice, so closedness cannot be decided by comparing candidates
    /// against each other (a set's same-support superset may not have been
    /// enumerated yet). The interrupted partial is instead verified against
    /// the database directly — every surviving set is a closed frequent set
    /// of the full database with its exact support.
    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        let minsupp = minsupp.max(1);
        let mut gov = Some(budget.start());
        if let Some(reason) = checkpoint!(gov, 0, 0, 0) {
            return MineOutcome::Interrupted {
                partial: MiningResult::new(),
                reason,
                progress: Progress {
                    processed: 0,
                    total: None,
                },
            };
        }
        let n = db.transactions().len() as u32;
        let (candidates, gov, tripped, _) =
            with_kernel!(self.rep, n, |k| drive(&k, db, minsupp, gov, None));
        match tripped {
            None => MineOutcome::complete(filter_closed(candidates)),
            Some(reason) => {
                let processed = gov.as_ref().map_or(0, Governor::processed);
                MineOutcome::Interrupted {
                    partial: verified_closed(db, candidates),
                    reason,
                    progress: Progress {
                        processed,
                        total: None,
                    },
                }
            }
        }
    }
}

impl EclatMiner {
    /// Like [`ClosedMiner::mine`] but also returns the search counters
    /// (lattice nodes visited, tid-list intersections, perfect extensions,
    /// and the kernel accounting of the selected representation).
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, Counters) {
        let minsupp = minsupp.max(1);
        let n = db.transactions().len() as u32;
        let (candidates, _, tripped, counters) =
            with_kernel!(self.rep, n, |k| drive(&k, db, minsupp, None, None));
        debug_assert!(tripped.is_none());
        (filter_closed(candidates), counters)
    }

    /// Constrained mining with counters. The monotone / convertible
    /// constraints (include, min-size, min-area) prune the lattice walk:
    /// the min-area support floor raises the effective minimum support for
    /// the whole recursion, and per-node envelope bounds cut subtrees (see
    /// [`subtree_prunable`] for the closedness-safety argument). Max-size,
    /// the anti-monotone one, must wait for [`filter_closed`] — dropping a
    /// same-support superset early would let non-closed subsets survive —
    /// so it lands in the final [`apply_constraints_owned`] gate.
    pub fn mine_constrained_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> (MiningResult, Counters) {
        let minsupp_eff = constraints.support_floor(db.num_items(), minsupp.max(1));
        if minsupp_eff == u32::MAX {
            return (MiningResult::new(), Counters::new());
        }
        let n = db.transactions().len() as u32;
        let (candidates, _, tripped, mut counters) = with_kernel!(self.rep, n, |k| drive(
            &k,
            db,
            minsupp_eff,
            None,
            Some(constraints.clone())
        ));
        debug_assert!(tripped.is_none());
        let closed = filter_closed(candidates);
        let before = closed.len();
        let result = apply_constraints_owned(closed, constraints);
        counters.add(Counter::ConstraintPrunes, (before - result.len()) as u64);
        (result, counters)
    }
}

/// Builds the first frontier and runs the lattice walk with one kernel.
/// Returns the raw candidates, the governor, the trip reason (if any), and
/// the counters.
fn drive<K: TidSetKernel>(
    kernel: &K,
    db: &RecodedDatabase,
    minsupp: u32,
    gov: Option<Governor>,
    cs: Option<ConstraintSet>,
) -> (
    Vec<FoundSet>,
    Option<Governor>,
    Option<TripReason>,
    Counters,
) {
    let lists = TidLists::from_database(db);
    let mut ctx = Ctx {
        minsupp,
        candidates: Vec::new(),
        gov,
        counters: Counters::new(),
        cs,
    };
    // items with their full tid sets, ascending item order
    let frontier: Vec<(Item, K::Set)> = (0..db.num_items())
        .filter(|&i| lists.item_support(i) >= minsupp)
        .map(|i| (i, kernel.pack_list(lists.list(i))))
        .collect();
    let tripped = recurse(&mut ctx, kernel, &[], &frontier).err();
    (ctx.candidates, ctx.gov, tripped, ctx.counters)
}

/// Keeps only the candidates that are closed in the full database: a set
/// survives iff no single-item extension has equal support. Used on the
/// interrupted path, where the candidate collection is incomplete and the
/// collection-internal [`filter_closed`] could keep non-closed sets. The
/// per-extension support probes run on a transposed [`BitCover`] (one
/// word-AND pass per extension) instead of rescanning the horizontal rows.
fn verified_closed(db: &RecodedDatabase, candidates: Vec<FoundSet>) -> MiningResult {
    let bits = BitCover::from_database(db);
    let mut out = MiningResult::new();
    let mut seen = std::collections::HashSet::new();
    for fs in candidates {
        if !seen.insert(fs.items.clone()) {
            continue;
        }
        let closed = (0..db.num_items())
            .filter(|&i| !fs.items.contains(i))
            .all(|i| {
                let mut ext = fs.items.clone();
                ext.insert(i);
                bits.support(&ext) < fs.support
            });
        if closed {
            out.sets.push(fs);
        }
    }
    out
}

/// Processes the conditional database `frontier` (items with their tid sets
/// restricted to transactions containing `prefix`).
fn recurse<K: TidSetKernel>(
    ctx: &mut Ctx,
    kernel: &K,
    prefix: &[Item],
    frontier: &[(Item, K::Set)],
) -> Result<(), TripReason> {
    let mut buf = kernel.empty();
    for (idx, (item, tids)) in frontier.iter().enumerate() {
        // one lattice node per frontier element: the natural checkpoint
        if let Some(reason) = checkpoint!(ctx.gov, 0, 0, ctx.candidates.len()) {
            return Err(reason);
        }
        ctx.counters.bump(Counter::SearchSteps);
        let supp = kernel.support(tids);
        // the item set prefix ∪ {item} is frequent with support `supp`
        let mut items: Vec<Item> = prefix.to_vec();
        items.push(*item);

        // build the conditional frontier and collect perfect extensions
        let mut next: Vec<(Item, K::Set)> = Vec::new();
        let mut perfect: Vec<Item> = Vec::new();
        for (other, other_tids) in &frontier[idx + 1..] {
            let s = kernel.intersect(tids, other_tids, &mut buf, &mut ctx.counters);
            if s == supp {
                ctx.counters.bump(Counter::PerfectExtensions);
                perfect.push(*other);
            } else if s >= ctx.minsupp {
                next.push((*other, buf.clone()));
            }
        }

        // the candidate set: prefix ∪ {item}, absorbing perfect extensions
        // (only the maximal of the 2^|E| same-support supersets can be closed)
        let mut maximal = items;
        maximal.extend_from_slice(&perfect);
        let candidate = ItemSet::new(maximal.clone());

        // constraint push: drop candidates / cut subtrees that cannot
        // satisfy the monotone or convertible constraints (max-size waits
        // for the closedness filter)
        let (emit, descend) = match &ctx.cs {
            None => (true, true),
            Some(cs) => {
                let emit = !candidate_prunable(cs, &candidate, supp);
                let descend = if next.is_empty() {
                    false
                } else {
                    let pool: Vec<Item> = next.iter().map(|(i, _)| *i).collect();
                    !subtree_prunable(cs, candidate.as_slice(), &pool, supp)
                };
                if !emit || (!descend && !next.is_empty()) {
                    ctx.counters.bump(Counter::ConstraintPrunes);
                }
                (emit, descend)
            }
        };

        if emit {
            ctx.candidates.push(FoundSet::new(candidate.clone(), supp));
            if let Some(g) = ctx.gov.as_mut() {
                g.add_processed(1);
            }
        }
        if descend && !next.is_empty() {
            // the perfect extensions belong to every set mined below
            recurse(ctx, kernel, candidate.as_slice(), &next)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            for rep in [
                Representation::Scalar,
                Representation::Bitset,
                Representation::Gallop,
            ] {
                let got = EclatMiner::with_rep(rep).mine(&db, minsupp).canonicalized();
                assert_eq!(got, want, "rep={rep} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn perfect_extension_collapse_keeps_closed_sets() {
        // every transaction contains {0,1}: perfect extension chain
        let db = RecodedDatabase::from_dense(vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 3]], 4);
        let want = mine_reference(&db, 1);
        let got = EclatMiner::default().mine(&db, 1).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 3);
        for rep in [
            Representation::Scalar,
            Representation::Bitset,
            Representation::Gallop,
        ] {
            assert!(EclatMiner::with_rep(rep).mine(&db, 1).is_empty());
        }
    }

    #[test]
    fn miner_name() {
        assert_eq!(EclatMiner::default().name(), "eclat");
        assert_eq!(
            EclatMiner::with_rep(Representation::Bitset).name(),
            "eclat-bitset"
        );
        assert_eq!(
            EclatMiner::with_rep(Representation::Gallop).name(),
            "eclat-gallop"
        );
    }

    #[test]
    fn kernel_counters_reflect_the_selected_layout() {
        let db = paper_db();
        let (_, scalar) = EclatMiner::default().mine_with_stats(&db, 1);
        let (_, bitset) = EclatMiner::with_rep(Representation::Bitset).mine_with_stats(&db, 1);
        let (_, gallop) = EclatMiner::with_rep(Representation::Gallop).mine_with_stats(&db, 1);
        assert_eq!(scalar.get(Counter::WordsAnded), 0);
        assert_eq!(scalar.get(Counter::GallopProbes), 0);
        assert!(scalar.get(Counter::TidIntersections) > 0);
        assert!(bitset.get(Counter::WordsAnded) > 0);
        assert!(bitset.get(Counter::PopcountCalls) > 0);
        assert!(gallop.get(Counter::GallopProbes) > 0);
        // the walk itself is identical: same lattice nodes, same merges
        assert_eq!(
            scalar.get(Counter::TidIntersections),
            bitset.get(Counter::TidIntersections)
        );
        assert_eq!(
            scalar.get(Counter::SearchSteps),
            gallop.get(Counter::SearchSteps)
        );
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let db = paper_db();
        for minsupp in 1..=4 {
            for rep in [
                Representation::Scalar,
                Representation::Bitset,
                Representation::Gallop,
            ] {
                let miner = EclatMiner::with_rep(rep);
                let want = miner.mine(&db, minsupp).canonicalized();
                let outcome = miner.mine_governed(&db, minsupp, &fim_core::Budget::unlimited());
                assert!(!outcome.is_interrupted());
                assert_eq!(outcome.into_result().canonicalized(), want, "rep={rep}");
            }
        }
    }

    #[test]
    fn set_budget_partial_contains_only_true_closed_sets() {
        let db = paper_db();
        let full = mine_reference(&db, 1);
        for cap in 0..6 {
            let budget = fim_core::Budget::unlimited().with_max_closed_sets(cap);
            let outcome = EclatMiner::default().mine_governed(&db, 1, &budget);
            match outcome {
                fim_core::MineOutcome::Interrupted {
                    partial, reason, ..
                } => {
                    assert_eq!(reason, fim_core::TripReason::ClosedSetBudget);
                    for fs in &partial.sets {
                        assert_eq!(
                            full.support_of(&fs.items),
                            Some(fs.support),
                            "cap {cap}: {:?} must be closed with exact support",
                            fs.items
                        );
                    }
                }
                other => panic!("cap {cap}: expected interruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_token_interrupts_eclat() {
        let db = paper_db();
        let token = fim_core::CancelToken::new();
        token.cancel();
        let outcome = EclatMiner::default().mine_governed(
            &db,
            1,
            &fim_core::Budget::unlimited().with_cancel(token),
        );
        assert!(outcome.is_interrupted());
        assert!(outcome.result().is_empty());
    }
}

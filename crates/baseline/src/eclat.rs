//! Eclat (Zaki et al., KDD 1997): depth-first search over the item set
//! lattice with a vertical (tid-list) database representation.
//!
//! This implementation enumerates all frequent item sets via tid-list
//! intersection — the divide-and-conquer scheme of paper §2.2 — with
//! perfect-extension pruning (§2.2), and then filters the output down to the
//! closed sets. Perfect extensions are collected rather than recursed on:
//! all `2^|E|` supersets they span share the prefix's support, and only the
//! maximal one (prefix ∪ all perfect extensions) can be closed, so the
//! expansion is never materialized.

use crate::filter::filter_closed;
use fim_core::{
    checkpoint, itemset::intersect_into, Budget, ClosedMiner, FoundSet, Governor, Item, ItemSet,
    MineOutcome, MiningResult, Progress, RecodedDatabase, Tid, TidLists, TripReason,
};
use fim_obs::{Counter, Counters};

/// The Eclat-based closed-set miner (frequent enumeration + closed filter).
#[derive(Clone, Copy, Debug, Default)]
pub struct EclatMiner;

struct Ctx<'a> {
    minsupp: u32,
    candidates: Vec<FoundSet>,
    lists: &'a TidLists,
    gov: Option<Governor>,
    counters: Counters,
}

impl ClosedMiner for EclatMiner {
    fn name(&self) -> &'static str {
        "eclat"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        self.mine_with_stats(db, minsupp).0
    }

    /// Governed Eclat. On a trip, the candidate list covers only part of
    /// the lattice, so closedness cannot be decided by comparing candidates
    /// against each other (a set's same-support superset may not have been
    /// enumerated yet). The interrupted partial is instead verified against
    /// the database directly — every surviving set is a closed frequent set
    /// of the full database with its exact support.
    fn mine_governed(&self, db: &RecodedDatabase, minsupp: u32, budget: &Budget) -> MineOutcome {
        let minsupp = minsupp.max(1);
        let mut gov = Some(budget.start());
        if let Some(reason) = checkpoint!(gov, 0, 0, 0) {
            return MineOutcome::Interrupted {
                partial: MiningResult::new(),
                reason,
                progress: Progress {
                    processed: 0,
                    total: None,
                },
            };
        }
        let lists = TidLists::from_database(db);
        let mut ctx = Ctx {
            minsupp,
            candidates: Vec::new(),
            lists: &lists,
            gov,
            counters: Counters::new(),
        };
        let frontier: Vec<(Item, Vec<Tid>)> = (0..db.num_items())
            .filter(|&i| lists.item_support(i) >= minsupp)
            .map(|i| (i, lists.list(i).to_vec()))
            .collect();
        match recurse(&mut ctx, &[], &frontier) {
            Ok(()) => MineOutcome::complete(filter_closed(ctx.candidates)),
            Err(reason) => {
                let processed = ctx.gov.as_ref().map_or(0, Governor::processed);
                MineOutcome::Interrupted {
                    partial: verified_closed(db, ctx.candidates),
                    reason,
                    progress: Progress {
                        processed,
                        total: None,
                    },
                }
            }
        }
    }
}

impl EclatMiner {
    /// Like [`ClosedMiner::mine`] but also returns the search counters
    /// (lattice nodes visited, tid-list intersections, perfect extensions).
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, Counters) {
        let minsupp = minsupp.max(1);
        let lists = TidLists::from_database(db);
        let mut ctx = Ctx {
            minsupp,
            candidates: Vec::new(),
            lists: &lists,
            gov: None,
            counters: Counters::new(),
        };
        // items with their full tid lists, ascending item order
        let frontier: Vec<(Item, Vec<Tid>)> = (0..db.num_items())
            .filter(|&i| lists.item_support(i) >= minsupp)
            .map(|i| (i, lists.list(i).to_vec()))
            .collect();
        let ungoverned = recurse(&mut ctx, &[], &frontier);
        debug_assert!(ungoverned.is_ok());
        (filter_closed(ctx.candidates), ctx.counters)
    }
}

/// Keeps only the candidates that are closed in the full database: a set
/// survives iff no single-item extension has equal support. Used on the
/// interrupted path, where the candidate collection is incomplete and the
/// collection-internal [`filter_closed`] could keep non-closed sets.
fn verified_closed(db: &RecodedDatabase, candidates: Vec<FoundSet>) -> MiningResult {
    let mut out = MiningResult::new();
    let mut seen = std::collections::HashSet::new();
    for fs in candidates {
        if !seen.insert(fs.items.clone()) {
            continue;
        }
        let closed = (0..db.num_items())
            .filter(|&i| !fs.items.contains(i))
            .all(|i| {
                let mut ext = fs.items.clone();
                ext.insert(i);
                db.support(&ext) < fs.support
            });
        if closed {
            out.sets.push(fs);
        }
    }
    out
}

/// Processes the conditional database `frontier` (items with their tid lists
/// restricted to transactions containing `prefix`).
fn recurse(
    ctx: &mut Ctx<'_>,
    prefix: &[Item],
    frontier: &[(Item, Vec<Tid>)],
) -> Result<(), TripReason> {
    let mut buf: Vec<Tid> = Vec::new();
    for (idx, (item, tids)) in frontier.iter().enumerate() {
        // one lattice node per frontier element: the natural checkpoint
        if let Some(reason) = checkpoint!(ctx.gov, 0, 0, ctx.candidates.len()) {
            return Err(reason);
        }
        ctx.counters.bump(Counter::SearchSteps);
        // the item set prefix ∪ {item} is frequent with support |tids|
        let mut items: Vec<Item> = prefix.to_vec();
        items.push(*item);

        // build the conditional frontier and collect perfect extensions
        let mut next: Vec<(Item, Vec<Tid>)> = Vec::new();
        let mut perfect: Vec<Item> = Vec::new();
        for (other, other_tids) in &frontier[idx + 1..] {
            ctx.counters.bump(Counter::TidIntersections);
            intersect_into(tids, other_tids, &mut buf);
            if buf.len() == tids.len() {
                ctx.counters.bump(Counter::PerfectExtensions);
                perfect.push(*other);
            } else if buf.len() >= ctx.minsupp as usize {
                next.push((*other, buf.clone()));
            }
        }

        if perfect.is_empty() {
            ctx.candidates.push(FoundSet::new(
                ItemSet::new(items.clone()),
                tids.len() as u32,
            ));
            if let Some(g) = ctx.gov.as_mut() {
                g.add_processed(1);
            }
            if !next.is_empty() {
                recurse(ctx, &items, &next)?;
            }
        } else {
            // only prefix ∪ {item} ∪ perfect can be closed among the 2^|E|
            // same-support supersets
            let mut maximal = items.clone();
            maximal.extend_from_slice(&perfect);
            ctx.candidates.push(FoundSet::new(
                ItemSet::new(maximal.clone()),
                tids.len() as u32,
            ));
            if let Some(g) = ctx.gov.as_mut() {
                g.add_processed(1);
            }
            if !next.is_empty() {
                // the perfect extensions belong to every set mined below
                maximal.sort_unstable();
                recurse(ctx, &maximal, &next)?;
            }
        }
    }
    let _ = &ctx.lists; // lists kept for potential diffsets extension
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = EclatMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn perfect_extension_collapse_keeps_closed_sets() {
        // every transaction contains {0,1}: perfect extension chain
        let db = RecodedDatabase::from_dense(vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 3]], 4);
        let want = mine_reference(&db, 1);
        let got = EclatMiner.mine(&db, 1).canonicalized();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 3);
        assert!(EclatMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(EclatMiner.name(), "eclat");
    }

    #[test]
    fn governed_unlimited_matches_ungoverned() {
        let db = paper_db();
        for minsupp in 1..=4 {
            let want = EclatMiner.mine(&db, minsupp).canonicalized();
            let outcome = EclatMiner.mine_governed(&db, minsupp, &fim_core::Budget::unlimited());
            assert!(!outcome.is_interrupted());
            assert_eq!(outcome.into_result().canonicalized(), want);
        }
    }

    #[test]
    fn set_budget_partial_contains_only_true_closed_sets() {
        let db = paper_db();
        let full = mine_reference(&db, 1);
        for cap in 0..6 {
            let budget = fim_core::Budget::unlimited().with_max_closed_sets(cap);
            let outcome = EclatMiner.mine_governed(&db, 1, &budget);
            match outcome {
                fim_core::MineOutcome::Interrupted {
                    partial, reason, ..
                } => {
                    assert_eq!(reason, fim_core::TripReason::ClosedSetBudget);
                    for fs in &partial.sets {
                        assert_eq!(
                            full.support_of(&fs.items),
                            Some(fs.support),
                            "cap {cap}: {:?} must be closed with exact support",
                            fs.items
                        );
                    }
                }
                other => panic!("cap {cap}: expected interruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancelled_token_interrupts_eclat() {
        let db = paper_db();
        let token = fim_core::CancelToken::new();
        token.cancel();
        let outcome =
            EclatMiner.mine_governed(&db, 1, &fim_core::Budget::unlimited().with_cancel(token));
        assert!(outcome.is_interrupted());
        assert!(outcome.result().is_empty());
    }
}

//! The FP-tree: a prefix-tree database representation with per-item node
//! links (Han, Pei & Yin, SIGMOD 2000).
//!
//! As the paper notes (§2.2), the FP-tree combines a compressed horizontal
//! representation (a prefix tree of the transactions) with a vertical one
//! (the chains linking all nodes of one item). Items are arranged along
//! paths in descending order of a fixed global rank (most frequent first),
//! so that transactions sharing frequent prefixes share tree paths.

use fim_core::Item;

const NONE: u32 = u32::MAX;

/// One FP-tree node.
#[derive(Clone, Copy, Debug)]
pub struct FpNode {
    /// Item code (dense codes of the database being mined).
    pub item: Item,
    /// Number of transactions routed through this node.
    pub count: u32,
    /// Parent node (towards the root), or `NONE` at the root's children.
    pub parent: u32,
    /// Next node carrying the same item (the vertical chain).
    pub next: u32,
    child: u32,
    sibling: u32,
}

/// One header-table entry: an item, its total count, and its node chain.
#[derive(Clone, Copy, Debug)]
pub struct Header {
    /// Item code.
    pub item: Item,
    /// Total support of the item in the (conditional) database.
    pub count: u32,
    /// Head of the chain of nodes carrying this item.
    pub first: u32,
}

/// An FP-tree over a (possibly conditional, weighted) transaction database.
#[derive(Clone, Debug)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    /// Header entries sorted by rank (most frequent item first).
    headers: Vec<Header>,
    /// `rank[item] = position in the global order` (lower = more frequent).
    header_index: Vec<u32>,
}

impl FpTree {
    /// Builds an FP-tree from weighted transactions.
    ///
    /// * `transactions` — `(items, weight)` pairs; items in any order,
    ///   infrequent items are filtered here.
    /// * `rank` — global order: `rank[item]` is the path position (lower =
    ///   closer to the root); must cover every item code that can occur.
    /// * `minsupp` — items whose summed weight is below this are dropped.
    pub fn build(
        transactions: &[(Vec<Item>, u32)],
        rank: &[u32],
        num_items: u32,
        minsupp: u32,
    ) -> Self {
        let mut freq = vec![0u32; num_items as usize];
        for (items, w) in transactions {
            for &i in items {
                freq[i as usize] += w;
            }
        }
        // header table: frequent items sorted by rank
        let mut items: Vec<Item> = (0..num_items)
            .filter(|&i| freq[i as usize] >= minsupp)
            .collect();
        items.sort_unstable_by_key(|&i| rank[i as usize]);
        let mut header_index = vec![NONE; num_items as usize];
        let headers: Vec<Header> = items
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                header_index[i as usize] = pos as u32;
                Header {
                    item: i,
                    count: freq[i as usize],
                    first: NONE,
                }
            })
            .collect();

        let mut tree = FpTree {
            nodes: Vec::new(),
            headers,
            header_index,
        };
        let mut root_child = NONE;
        let mut path: Vec<Item> = Vec::new();
        for (items, w) in transactions {
            path.clear();
            path.extend(
                items
                    .iter()
                    .copied()
                    .filter(|&i| tree.header_index[i as usize] != NONE),
            );
            path.sort_unstable_by_key(|&i| rank[i as usize]);
            root_child = tree.insert_path(root_child, &path, *w);
        }
        tree
    }

    /// Inserts one ranked path with weight `w`; returns the (possibly new)
    /// head of the root's child list.
    fn insert_path(&mut self, mut root_child: u32, path: &[Item], w: u32) -> u32 {
        let mut parent = NONE;
        let mut slot_is_root = true;
        let mut slot_node = NONE; // whose `child` field to use when !root
        for &item in path {
            // search the sibling list hanging off the current slot
            let head = if slot_is_root {
                root_child
            } else {
                self.nodes[slot_node as usize].child
            };
            let mut found = NONE;
            let mut cur = head;
            while cur != NONE {
                if self.nodes[cur as usize].item == item {
                    found = cur;
                    break;
                }
                cur = self.nodes[cur as usize].sibling;
            }
            let node = if found != NONE {
                self.nodes[found as usize].count += w;
                found
            } else {
                let idx = self.nodes.len() as u32;
                let hpos = self.header_index[item as usize] as usize;
                self.nodes.push(FpNode {
                    item,
                    count: w,
                    parent,
                    next: self.headers[hpos].first,
                    child: NONE,
                    sibling: head,
                });
                self.headers[hpos].first = idx;
                if slot_is_root {
                    root_child = idx;
                } else {
                    self.nodes[slot_node as usize].child = idx;
                }
                idx
            };
            parent = node;
            slot_is_root = false;
            slot_node = node;
        }
        root_child
    }

    /// The header table, most frequent item first.
    pub fn headers(&self) -> &[Header] {
        &self.headers
    }

    /// Node access.
    pub fn node(&self, idx: u32) -> &FpNode {
        &self.nodes[idx as usize]
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The conditional pattern base of item `i`: for every node carrying
    /// `i`, the path of items between it and the root, weighted by the
    /// node's count.
    pub fn conditional_base(&self, header_pos: usize) -> Vec<(Vec<Item>, u32)> {
        let mut base = Vec::new();
        let mut n = self.headers[header_pos].first;
        while n != NONE {
            let node = &self.nodes[n as usize];
            let mut path = Vec::new();
            let mut p = node.parent;
            while p != NONE {
                path.push(self.nodes[p as usize].item);
                p = self.nodes[p as usize].parent;
            }
            if !path.is_empty() || node.count > 0 {
                base.push((path, node.count));
            }
            n = node.next;
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// rank = identity (item 0 most frequent)
    fn idrank(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn build_shares_prefixes() {
        let txs = vec![(vec![0, 1, 2], 1), (vec![0, 1], 1), (vec![0, 2], 1)];
        let t = FpTree::build(&txs, &idrank(3), 3, 1);
        // paths: 0-1-2, 0-1, 0-2 → nodes: 0,1,2,2' = 4
        assert_eq!(t.node_count(), 4);
        let h0 = t.headers().iter().find(|h| h.item == 0).unwrap();
        assert_eq!(h0.count, 3);
        // single node for item 0
        assert_eq!(t.node(h0.first).count, 3);
        assert_eq!(t.node(h0.first).next, NONE);
    }

    #[test]
    fn infrequent_items_dropped() {
        let txs = vec![(vec![0, 2], 1), (vec![0], 1)];
        let t = FpTree::build(&txs, &idrank(3), 3, 2);
        assert_eq!(t.headers().len(), 1);
        assert_eq!(t.headers()[0].item, 0);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn weights_accumulate() {
        let txs = vec![(vec![1, 0], 3), (vec![0], 2)];
        let t = FpTree::build(&txs, &idrank(2), 2, 1);
        let h0 = t.headers().iter().find(|h| h.item == 0).unwrap();
        assert_eq!(h0.count, 5);
        let h1 = t.headers().iter().find(|h| h.item == 1).unwrap();
        assert_eq!(h1.count, 3);
    }

    #[test]
    fn conditional_base_walks_to_root() {
        let txs = vec![(vec![0, 1, 2], 2), (vec![1, 2], 1)];
        let t = FpTree::build(&txs, &idrank(3), 3, 1);
        let pos = t.headers().iter().position(|h| h.item == 2).unwrap();
        let mut base = t.conditional_base(pos);
        base.sort();
        // node 2 under path 0-1 (count 2) and under path 1 (count 1)
        assert_eq!(base, vec![(vec![1], 1), (vec![1, 0], 2)]);
    }

    #[test]
    fn custom_rank_orders_paths() {
        // rank puts item 2 at the root
        let rank = vec![2, 1, 0];
        let txs = vec![(vec![0, 2], 1), (vec![2, 1], 1)];
        let t = FpTree::build(&txs, &rank, 3, 1);
        // both transactions start with item 2 → shared root node
        let h2 = t.headers().iter().find(|h| h.item == 2).unwrap();
        assert_eq!(t.node(h2.first).count, 2);
    }
}

//! dEclat: Eclat with *diffsets* (Zaki & Gouda, KDD 2003).
//!
//! Instead of carrying the tid list of every candidate, a node below the
//! first level stores only the *difference* to its parent's tid list:
//! `d(P ∪ {j}) = t(P) − t(P ∪ {j})`, with support maintained arithmetically
//! as `supp(P ∪ {j}) = supp(P) − |d(P ∪ {j})|`. On dense databases the
//! diffsets are much smaller than the tid lists, which makes this the
//! classic variant for exactly the dense few-transaction data this
//! workspace targets. The recurrence between siblings `i < j` of prefix
//! `P` is `d(P ∪ {i,j}) = d(P ∪ {j}) − d(P ∪ {i})`; only the first level
//! computes `d(ij) = t(i) − t(j)` from real tid lists.

use crate::filter::filter_closed;
use fim_core::{
    ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase, Tid, TidLists,
};

/// The diffset-based Eclat miner (closed output via subsumption filter).
#[derive(Clone, Copy, Debug, Default)]
pub struct DEclatMiner;

/// `out = a − b` on strictly ascending slices.
fn diff_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j == b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
}

struct Ctx {
    minsupp: u32,
    candidates: Vec<FoundSet>,
}

impl ClosedMiner for DEclatMiner {
    fn name(&self) -> &'static str {
        "declat"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let lists = TidLists::from_database(db);
        let mut ctx = Ctx {
            minsupp,
            candidates: Vec::new(),
        };
        let frequent: Vec<Item> = (0..db.num_items())
            .filter(|&i| lists.item_support(i) >= minsupp)
            .collect();
        // first level: tid lists; children switch to diffsets
        let mut buf: Vec<Tid> = Vec::new();
        for (idx, &i) in frequent.iter().enumerate() {
            let t_i = lists.list(i);
            let supp_i = t_i.len() as u32;
            let mut next: Vec<(Item, Vec<Tid>, u32)> = Vec::new();
            let mut perfect: Vec<Item> = Vec::new();
            for &j in &frequent[idx + 1..] {
                diff_into(t_i, lists.list(j), &mut buf);
                let supp_ij = supp_i - buf.len() as u32;
                if supp_ij == supp_i {
                    perfect.push(j);
                } else if supp_ij >= ctx.minsupp {
                    next.push((j, buf.clone(), supp_ij));
                }
            }
            emit_and_recurse(&mut ctx, &[i], supp_i, perfect, next);
        }
        filter_closed(ctx.candidates)
    }
}

/// Emits the perfect-extension-collapsed candidate for `prefix` and
/// recurses over the diffset frontier.
fn emit_and_recurse(
    ctx: &mut Ctx,
    prefix: &[Item],
    prefix_supp: u32,
    perfect: Vec<Item>,
    frontier: Vec<(Item, Vec<Tid>, u32)>,
) {
    let mut maximal: Vec<Item> = prefix.to_vec();
    maximal.extend_from_slice(&perfect);
    ctx.candidates
        .push(FoundSet::new(ItemSet::new(maximal.clone()), prefix_supp));
    if frontier.is_empty() {
        return;
    }
    maximal.sort_unstable();
    recurse(ctx, &maximal, &frontier);
}

/// Diffset recursion: `frontier` holds `(item, diffset w.r.t. prefix,
/// support)` triples in ascending item order.
fn recurse(ctx: &mut Ctx, prefix: &[Item], frontier: &[(Item, Vec<Tid>, u32)]) {
    let mut buf: Vec<Tid> = Vec::new();
    for (idx, (i, d_i, supp_i)) in frontier.iter().enumerate() {
        let mut next: Vec<(Item, Vec<Tid>, u32)> = Vec::new();
        let mut perfect: Vec<Item> = Vec::new();
        for (j, d_j, _) in &frontier[idx + 1..] {
            // d(P ∪ {i,j}) = d(P ∪ {j}) − d(P ∪ {i})
            diff_into(d_j, d_i, &mut buf);
            let supp_ij = supp_i - buf.len() as u32;
            if supp_ij == *supp_i {
                perfect.push(*j);
            } else if supp_ij >= ctx.minsupp {
                next.push((*j, buf.clone(), supp_ij));
            }
        }
        let mut new_prefix = prefix.to_vec();
        new_prefix.push(*i);
        emit_and_recurse(ctx, &new_prefix, *supp_i, perfect, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::EclatMiner;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = DEclatMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn agrees_with_plain_eclat() {
        let db = RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 2, 4],
                vec![1, 2, 3],
                vec![0, 2, 3, 4],
                vec![0, 1, 3, 4],
            ],
            5,
        );
        for minsupp in 1..=5 {
            let a = DEclatMiner.mine(&db, minsupp).canonicalized();
            let b = EclatMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(a, b, "minsupp={minsupp}");
        }
    }

    #[test]
    fn diff_into_basic() {
        let mut out = Vec::new();
        diff_into(&[1, 3, 5, 7], &[3, 4, 7], &mut out);
        assert_eq!(out, vec![1, 5]);
        diff_into(&[], &[1], &mut out);
        assert!(out.is_empty());
        diff_into(&[2, 4], &[], &mut out);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn dense_database_small_diffsets() {
        // on a dense database the support bookkeeping must stay exact
        let db = RecodedDatabase::from_dense(vec![(0..12).collect::<Vec<u32>>(); 6], 12);
        let got = DEclatMiner.mine(&db, 3).canonicalized();
        assert_eq!(got.len(), 1);
        assert_eq!(got.sets[0].support, 6);
        assert_eq!(got.sets[0].items.len(), 12);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 3);
        assert!(DEclatMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(DEclatMiner.name(), "declat");
    }
}

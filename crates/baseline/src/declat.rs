//! dEclat: Eclat with *diffsets* (Zaki & Gouda, KDD 2003).
//!
//! Instead of carrying the tid list of every candidate, a node below the
//! first level stores only the *difference* to its parent's tid list:
//! `d(P ∪ {j}) = t(P) − t(P ∪ {j})`, with support maintained arithmetically
//! as `supp(P ∪ {j}) = supp(P) − |d(P ∪ {j})|`. On dense databases the
//! diffsets are much smaller than the tid lists, which makes this the
//! classic variant for exactly the dense few-transaction data this
//! workspace targets. The recurrence between siblings `i < j` of prefix
//! `P` is `d(P ∪ {i,j}) = d(P ∪ {j}) − d(P ∪ {i})`; only the first level
//! computes `d(ij) = t(i) − t(j)` from real tid lists.
//!
//! The diffsets run behind the same [`TidSetKernel`] as Eclat's tid sets:
//! linear-merge lists (`declat`), galloping lists (`declat-gallop`), or
//! packed bitsets with word-ANDNOT (`declat-bitset`), all output-identical.

use crate::filter::{apply_constraints_owned, candidate_prunable, filter_closed, subtree_prunable};
use crate::kernel::{with_kernel, TidSetKernel};
use fim_core::{
    ClosedMiner, ConstraintSet, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase,
    Representation, TidLists,
};
use fim_obs::{Counter, Counters};

pub use crate::kernel::diff_into;

/// The diffset-based Eclat miner (closed output via subsumption filter).
#[derive(Clone, Copy, Debug, Default)]
pub struct DEclatMiner {
    /// Physical diffset layout driving the lattice walk. Output-invariant.
    pub rep: Representation,
}

impl DEclatMiner {
    /// A miner with an explicit diffset representation.
    pub fn with_rep(rep: Representation) -> Self {
        DEclatMiner { rep }
    }

    /// Like [`ClosedMiner::mine`] but also returns the search counters
    /// (lattice nodes, diffset merges, and the kernel accounting of the
    /// selected representation).
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, Counters) {
        let minsupp = minsupp.max(1);
        with_kernel!(self.rep, db.transactions().len() as u32, |k| drive(
            &k, db, minsupp, None
        ))
    }

    /// Constrained mining with counters — the same push as Eclat's (see
    /// `EclatMiner::mine_constrained_with_stats`): min-area raises the
    /// effective support floor, per-node envelope bounds cut subtrees, and
    /// the anti-monotone max-size waits for [`filter_closed`].
    pub fn mine_constrained_with_stats(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> (MiningResult, Counters) {
        let minsupp_eff = constraints.support_floor(db.num_items(), minsupp.max(1));
        if minsupp_eff == u32::MAX {
            return (MiningResult::new(), Counters::new());
        }
        let (closed, mut counters) = with_kernel!(self.rep, db.transactions().len() as u32, |k| {
            drive(&k, db, minsupp_eff, Some(constraints.clone()))
        });
        let before = closed.len();
        let result = apply_constraints_owned(closed, constraints);
        counters.add(Counter::ConstraintPrunes, (before - result.len()) as u64);
        (result, counters)
    }
}

struct Ctx {
    minsupp: u32,
    candidates: Vec<FoundSet>,
    counters: Counters,
    /// Pushed constraints (dense codes); max-size excluded, as in Eclat.
    cs: Option<ConstraintSet>,
}

impl ClosedMiner for DEclatMiner {
    fn name(&self) -> &'static str {
        match self.rep {
            Representation::Scalar => "declat",
            Representation::Bitset => "declat-bitset",
            Representation::Gallop => "declat-gallop",
        }
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        self.mine_with_stats(db, minsupp).0
    }

    fn supports_constraints(&self) -> bool {
        true
    }

    fn mine_constrained(
        &self,
        db: &RecodedDatabase,
        minsupp: u32,
        constraints: &ConstraintSet,
    ) -> MiningResult {
        self.mine_constrained_with_stats(db, minsupp, constraints).0
    }
}

/// First level (tid lists → first diffsets) plus the diffset recursion,
/// monomorphized per kernel.
fn drive<K: TidSetKernel>(
    kernel: &K,
    db: &RecodedDatabase,
    minsupp: u32,
    cs: Option<ConstraintSet>,
) -> (MiningResult, Counters) {
    let lists = TidLists::from_database(db);
    let mut ctx = Ctx {
        minsupp,
        candidates: Vec::new(),
        counters: Counters::new(),
        cs,
    };
    let frequent: Vec<Item> = (0..db.num_items())
        .filter(|&i| lists.item_support(i) >= minsupp)
        .collect();
    // first level: tid lists; children switch to diffsets
    let sets: Vec<K::Set> = frequent
        .iter()
        .map(|&i| kernel.pack_list(lists.list(i)))
        .collect();
    let mut buf = kernel.empty();
    for (idx, &i) in frequent.iter().enumerate() {
        ctx.counters.bump(Counter::SearchSteps);
        let supp_i = lists.item_support(i);
        let mut next: Vec<(Item, K::Set, u32)> = Vec::new();
        let mut perfect: Vec<Item> = Vec::new();
        for (j_idx, &j) in frequent.iter().enumerate().skip(idx + 1) {
            // d(ij) = t(i) − t(j)
            let d = kernel.diff(&sets[idx], &sets[j_idx], &mut buf, &mut ctx.counters);
            let supp_ij = supp_i - d;
            if supp_ij == supp_i {
                ctx.counters.bump(Counter::PerfectExtensions);
                perfect.push(j);
            } else if supp_ij >= ctx.minsupp {
                next.push((j, buf.clone(), supp_ij));
            }
        }
        emit_and_recurse(&mut ctx, kernel, &[i], supp_i, perfect, next);
    }
    (
        filter_closed(std::mem::take(&mut ctx.candidates)),
        ctx.counters,
    )
}

/// Emits the perfect-extension-collapsed candidate for `prefix` and
/// recurses over the diffset frontier.
fn emit_and_recurse<K: TidSetKernel>(
    ctx: &mut Ctx,
    kernel: &K,
    prefix: &[Item],
    prefix_supp: u32,
    perfect: Vec<Item>,
    frontier: Vec<(Item, K::Set, u32)>,
) {
    let mut maximal: Vec<Item> = prefix.to_vec();
    maximal.extend_from_slice(&perfect);
    let candidate = ItemSet::new(maximal);
    // constraint push: same candidate-drop / subtree-cut rules as Eclat
    // (closedness-safety argument in `filter::candidate_prunable`)
    let (emit, descend) = match &ctx.cs {
        None => (true, true),
        Some(cs) => {
            let emit = !candidate_prunable(cs, &candidate, prefix_supp);
            let descend = if frontier.is_empty() {
                false
            } else {
                let pool: Vec<Item> = frontier.iter().map(|(i, _, _)| *i).collect();
                !subtree_prunable(cs, candidate.as_slice(), &pool, prefix_supp)
            };
            if !emit || (!descend && !frontier.is_empty()) {
                ctx.counters.bump(Counter::ConstraintPrunes);
            }
            (emit, descend)
        }
    };
    if emit {
        ctx.candidates
            .push(FoundSet::new(candidate.clone(), prefix_supp));
    }
    if descend && !frontier.is_empty() {
        recurse(ctx, kernel, candidate.as_slice(), &frontier);
    }
}

/// Diffset recursion: `frontier` holds `(item, diffset w.r.t. prefix,
/// support)` triples in ascending item order.
fn recurse<K: TidSetKernel>(
    ctx: &mut Ctx,
    kernel: &K,
    prefix: &[Item],
    frontier: &[(Item, K::Set, u32)],
) {
    let mut buf = kernel.empty();
    for (idx, (i, d_i, supp_i)) in frontier.iter().enumerate() {
        ctx.counters.bump(Counter::SearchSteps);
        let mut next: Vec<(Item, K::Set, u32)> = Vec::new();
        let mut perfect: Vec<Item> = Vec::new();
        for (j, d_j, _) in &frontier[idx + 1..] {
            // d(P ∪ {i,j}) = d(P ∪ {j}) − d(P ∪ {i})
            let d = kernel.diff(d_j, d_i, &mut buf, &mut ctx.counters);
            let supp_ij = supp_i - d;
            if supp_ij == *supp_i {
                ctx.counters.bump(Counter::PerfectExtensions);
                perfect.push(*j);
            } else if supp_ij >= ctx.minsupp {
                next.push((*j, buf.clone(), supp_ij));
            }
        }
        let mut new_prefix = prefix.to_vec();
        new_prefix.push(*i);
        emit_and_recurse(ctx, kernel, &new_prefix, *supp_i, perfect, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::EclatMiner;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            for rep in [
                Representation::Scalar,
                Representation::Bitset,
                Representation::Gallop,
            ] {
                let got = DEclatMiner::with_rep(rep)
                    .mine(&db, minsupp)
                    .canonicalized();
                assert_eq!(got, want, "rep={rep} minsupp={minsupp}");
            }
        }
    }

    #[test]
    fn agrees_with_plain_eclat() {
        let db = RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 2, 4],
                vec![1, 2, 3],
                vec![0, 2, 3, 4],
                vec![0, 1, 3, 4],
            ],
            5,
        );
        for minsupp in 1..=5 {
            let a = DEclatMiner::default().mine(&db, minsupp).canonicalized();
            let b = EclatMiner::default().mine(&db, minsupp).canonicalized();
            assert_eq!(a, b, "minsupp={minsupp}");
        }
    }

    #[test]
    fn diff_into_basic() {
        let mut out = Vec::new();
        diff_into(&[1, 3, 5, 7], &[3, 4, 7], &mut out);
        assert_eq!(out, vec![1, 5]);
        diff_into(&[], &[1], &mut out);
        assert!(out.is_empty());
        diff_into(&[2, 4], &[], &mut out);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn bitset_diffsets_count_words() {
        let db = paper_db();
        let (_, scalar) = DEclatMiner::default().mine_with_stats(&db, 1);
        let (_, bitset) = DEclatMiner::with_rep(Representation::Bitset).mine_with_stats(&db, 1);
        assert_eq!(scalar.get(Counter::WordsAnded), 0);
        assert!(bitset.get(Counter::WordsAnded) > 0);
        assert_eq!(
            scalar.get(Counter::TidIntersections),
            bitset.get(Counter::TidIntersections),
            "same lattice walk, same number of diffset merges"
        );
    }

    #[test]
    fn dense_database_small_diffsets() {
        // on a dense database the support bookkeeping must stay exact
        let db = RecodedDatabase::from_dense(vec![(0..12).collect::<Vec<u32>>(); 6], 12);
        for rep in [
            Representation::Scalar,
            Representation::Bitset,
            Representation::Gallop,
        ] {
            let got = DEclatMiner::with_rep(rep).mine(&db, 3).canonicalized();
            assert_eq!(got.len(), 1, "rep={rep}");
            assert_eq!(got.sets[0].support, 6);
            assert_eq!(got.sets[0].items.len(), 12);
        }
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 3);
        assert!(DEclatMiner::default().mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(DEclatMiner::default().name(), "declat");
        assert_eq!(
            DEclatMiner::with_rep(Representation::Bitset).name(),
            "declat-bitset"
        );
        assert_eq!(
            DEclatMiner::with_rep(Representation::Gallop).name(),
            "declat-gallop"
        );
    }
}

//! Apriori (Agrawal & Srikant, VLDB 1994): levelwise frequent item set
//! mining with candidate generation and pruning, followed by a closedness
//! filter.
//!
//! Included as the classic breadth-first enumeration baseline. On the
//! many-items/few-transactions data this paper targets it is the weakest
//! algorithm by far (the candidate space explodes with the item count),
//! which is exactly the behaviour the experiments are meant to show; use it
//! on small inputs only.

use crate::filter::filter_closed;
use fim_core::{BitMatrix, ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase};
use std::collections::HashSet;

/// The Apriori-based closed-set miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct AprioriMiner;

impl ClosedMiner for AprioriMiner {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let matrix = BitMatrix::from_database(db);
        let n = db.num_transactions();
        let mut all_frequent: Vec<FoundSet> = Vec::new();

        // level 1
        let mut level: Vec<(Vec<Item>, u32)> = (0..db.num_items())
            .filter_map(|i| {
                let s = db.item_supports()[i as usize];
                (s >= minsupp).then(|| (vec![i], s))
            })
            .collect();

        while !level.is_empty() {
            all_frequent.extend(
                level
                    .iter()
                    .map(|(items, s)| FoundSet::new(ItemSet::from_sorted(items.clone()), *s)),
            );
            let frequent_keys: HashSet<&[Item]> =
                level.iter().map(|(items, _)| items.as_slice()).collect();

            // candidate generation: join sets sharing all but the last item
            let mut next: Vec<(Vec<Item>, u32)> = Vec::new();
            for (a_idx, (a, _)) in level.iter().enumerate() {
                for (b, _) in &level[a_idx + 1..] {
                    let k = a.len();
                    if a[..k - 1] != b[..k - 1] {
                        // levels are sorted lexicographically, so once the
                        // shared prefix breaks it stays broken
                        break;
                    }
                    let mut cand = a.clone();
                    cand.push(b[k - 1]);
                    // prune: every (k)-subset must be frequent
                    let mut sub = Vec::with_capacity(k);
                    let prune_ok = (0..cand.len() - 2).all(|skip| {
                        sub.clear();
                        sub.extend(
                            cand.iter()
                                .enumerate()
                                .filter(|&(pos, _)| pos != skip)
                                .map(|(_, &i)| i),
                        );
                        frequent_keys.contains(sub.as_slice())
                    });
                    if !prune_ok {
                        continue;
                    }
                    // support counting against the bit matrix
                    let mut supp = 0u32;
                    for tid in 0..n {
                        if cand.iter().all(|&i| matrix.get(tid, i as usize)) {
                            supp += 1;
                        }
                    }
                    if supp >= minsupp {
                        next.push((cand, supp));
                    }
                }
            }
            next.sort_unstable();
            level = next;
        }
        filter_closed(all_frequent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = AprioriMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn level_one_only() {
        // pairwise disjoint items: no level-2 candidates survive
        let db = RecodedDatabase::from_dense(vec![vec![0], vec![1], vec![0]], 2);
        let got = AprioriMiner.mine(&db, 1).canonicalized();
        assert_eq!(got.len(), 2);
        assert_eq!(got.support_of(&ItemSet::from([0])), Some(2));
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 2);
        assert!(AprioriMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(AprioriMiner.name(), "apriori");
    }
}

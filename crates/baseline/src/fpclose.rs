//! FP-close: closed frequent item set mining on FP-trees, standing in for
//! the Grahne & Zhu implementation the paper benchmarks against.
//!
//! The recursion is FP-growth (conditional pattern bases → conditional
//! FP-trees) with two closed-set specifics:
//!
//! * *closure absorption*: items whose conditional support equals the
//!   prefix support (perfect extensions, paper §2.2) are moved into the
//!   prefix wholesale instead of being recursed on,
//! * *subsumption filtering*: candidates that have an equal-support proper
//!   superset among the other candidates are discarded (the CFI-tree check
//!   of FP-close, realized here as a grouped post-filter).

use crate::filter::filter_closed;
use crate::fptree::FpTree;
use fim_core::{ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase};
use std::collections::HashMap;

/// The CFI store: found candidates grouped by support, used for FP-close's
/// subsumption pruning — when a new candidate has an equal-support superset
/// among the already-found sets, the candidate *and its whole subtree* are
/// redundant (every closed set below it was reachable from the earlier
/// occurrence, which was processed first in the least-frequent-first
/// order).
type CfiStore = HashMap<u32, Vec<ItemSet>>;

/// The FP-close miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct FpCloseMiner;

impl ClosedMiner for FpCloseMiner {
    fn name(&self) -> &'static str {
        "fpclose"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let num_items = db.num_items();
        if num_items == 0 || db.num_transactions() == 0 {
            return MiningResult::new();
        }
        // global rank: most frequent item closest to the root; ties by code
        let mut order: Vec<Item> = (0..num_items).collect();
        order.sort_unstable_by_key(|&i| (std::cmp::Reverse(db.item_supports()[i as usize]), i));
        let mut rank = vec![0u32; num_items as usize];
        for (pos, &i) in order.iter().enumerate() {
            rank[i as usize] = pos as u32;
        }

        let txs: Vec<(Vec<Item>, u32)> =
            db.transactions().iter().map(|t| (t.to_vec(), 1)).collect();
        let tree = FpTree::build(&txs, &rank, num_items, minsupp);

        let mut candidates = Vec::new();
        // the database-wide closure (items in every transaction) is the
        // closed set for the empty prefix, if non-trivial
        let n = db.num_transactions() as u32;
        let full: Vec<Item> = (0..num_items)
            .filter(|&i| db.item_supports()[i as usize] == n)
            .collect();
        if !full.is_empty() && n >= minsupp {
            candidates.push(FoundSet::new(ItemSet::new(full), n));
        }

        let mut cfi: CfiStore = HashMap::new();
        for c in &candidates {
            cfi.entry(c.support).or_default().push(c.items.clone());
        }
        fpgrowth(
            &tree,
            &rank,
            num_items,
            minsupp,
            &[],
            &mut candidates,
            &mut cfi,
        );
        filter_closed(candidates)
    }
}

/// Recursive FP-growth with closure absorption.
///
/// For every header item (least frequent first) the candidate
/// `prefix ∪ {item} ∪ perfect-extensions` is emitted and the conditional
/// tree (without the absorbed items) is mined recursively.
#[allow(clippy::too_many_arguments)]
fn fpgrowth(
    tree: &FpTree,
    rank: &[u32],
    num_items: u32,
    minsupp: u32,
    prefix: &[Item],
    out: &mut Vec<FoundSet>,
    cfi: &mut CfiStore,
) {
    for pos in (0..tree.headers().len()).rev() {
        let h = tree.headers()[pos];
        debug_assert!(h.count >= minsupp, "headers are pre-filtered");
        let base = tree.conditional_base(pos);

        // conditional item frequencies to find perfect extensions of
        // prefix ∪ {h.item}
        let mut freq = vec![0u32; num_items as usize];
        for (items, w) in &base {
            for &i in items {
                freq[i as usize] += w;
            }
        }
        let perfect: Vec<Item> = (0..num_items)
            .filter(|&i| freq[i as usize] == h.count)
            .collect();

        let mut candidate = prefix.to_vec();
        candidate.push(h.item);
        candidate.extend_from_slice(&perfect);
        let candidate_set = ItemSet::new(candidate.clone());
        // subsumption pruning: an equal-support superset among the found
        // sets makes this candidate and its whole subtree redundant
        if let Some(found) = cfi.get(&h.count) {
            if found
                .iter()
                .any(|y| y.len() > candidate_set.len() && candidate_set.is_subset_of(y))
            {
                continue;
            }
        }
        cfi.entry(h.count).or_default().push(candidate_set.clone());
        out.push(FoundSet::new(candidate_set, h.count));

        // conditional database without perfect extensions (they are part of
        // every closed set below and already sit in the candidate prefix)
        let cond: Vec<(Vec<Item>, u32)> = base
            .into_iter()
            .map(|(items, w)| {
                (
                    items
                        .into_iter()
                        .filter(|&i| freq[i as usize] < h.count && freq[i as usize] >= minsupp)
                        .collect::<Vec<Item>>(),
                    w,
                )
            })
            .filter(|(items, _)| !items.is_empty())
            .collect();
        if cond.is_empty() {
            continue;
        }
        let cond_tree = FpTree::build(&cond, rank, num_items, minsupp);
        if cond_tree.headers().is_empty() {
            continue;
        }
        candidate.sort_unstable();
        fpgrowth(&cond_tree, rank, num_items, minsupp, &candidate, out, cfi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = FpCloseMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn common_item_in_all_transactions() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1], vec![0, 2], vec![0, 1, 2]], 3);
        let want = mine_reference(&db, 1);
        let got = FpCloseMiner.mine(&db, 1).canonicalized();
        assert_eq!(got, want);
        // {0} must be reported with support 3
        assert_eq!(got.support_of(&ItemSet::from([0])), Some(3));
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 4);
        assert!(FpCloseMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn duplicate_transactions() {
        let db = RecodedDatabase::from_dense(vec![vec![1, 2]; 5], 3);
        let got = FpCloseMiner.mine(&db, 2).canonicalized();
        assert_eq!(got.len(), 1);
        assert_eq!(got.support_of(&ItemSet::from([1, 2])), Some(5));
    }

    #[test]
    fn miner_name() {
        assert_eq!(FpCloseMiner.name(), "fpclose");
    }
}

//! # fim-baseline
//!
//! The comparison algorithms of the paper's evaluation (§5), all implemented
//! from scratch:
//!
//! * [`FpCloseMiner`] — FP-growth on an FP-tree with closure absorption and
//!   an equal-support subsumption filter, standing in for Grahne & Zhu's
//!   FP-close (FIMI'03 best-implementation award).
//! * [`LcmMiner`] — prefix-preserving closure extension (ppc-extension),
//!   standing in for Uno et al.'s LCM (FIMI'04 best-implementation award).
//! * [`EclatMiner`] — vertical tid-list depth-first search (Zaki et al.)
//!   over all frequent sets, followed by a closedness filter.
//! * [`DEclatMiner`] — the diffset variant of Eclat (Zaki & Gouda), which
//!   stores per-node differences instead of tid lists — the classic
//!   enumeration answer to dense few-transaction data.
//! * [`AprioriMiner`] — classic levelwise candidate generation (Agrawal &
//!   Srikant), followed by a closedness filter.
//! * [`SamMiner`] — Borgelt & Wang's Split-and-Merge, the paper's example
//!   (§2.2) of a purely horizontal divide-and-conquer enumerator.
//! * [`NaiveCumulativeMiner`] — the flat-repository cumulative intersection
//!   scheme of Mielikäinen (FIMI'03), the baseline that IsTa's prefix tree
//!   improves on by the >100× factor reported in §5.
//!
//! All miners implement [`fim_core::ClosedMiner`] and return exactly the
//! closed frequent item sets — equality with the intersection-based miners
//! is enforced by the cross-algorithm test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod declat;
pub mod eclat;
pub mod filter;
pub mod fpclose;
pub mod fptree;
pub mod kernel;
pub mod lcm;
pub mod naive;
pub mod sam;

pub use apriori::AprioriMiner;
pub use declat::DEclatMiner;
pub use eclat::EclatMiner;
pub use fpclose::FpCloseMiner;
pub use lcm::{LcmClassicMiner, LcmMiner};
pub use naive::NaiveCumulativeMiner;
pub use sam::SamMiner;

//! LCM-style closed set mining by prefix-preserving closure extension
//! (Uno, Asai, Uchida & Arimura, FIMI'03/'04).
//!
//! LCM enumerates closed sets *directly*, without a repository or a
//! post-filter: every closed set has a unique parent in a spanning tree of
//! the closed-set lattice, defined through the *ppc-extension* (prefix
//! preserving closure extension). From a closed set `P` with core item `i`,
//! the children are the closures `Q = cl(P ∪ {j})` for items `j > i`,
//! `j ∉ P`, that satisfy the prefix condition `Q ∩ {0..j} = P ∩ {0..j}` —
//! i.e. the closure adds no item below `j`. Each closed set is generated
//! exactly once, so the traversal needs no duplicate detection and runs in
//! time linear in the number of closed sets (for bounded item frequency).

use fim_core::{
    itemset::intersect_into, ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase,
    Tid, TidLists,
};

/// The LCM-style miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct LcmMiner;

impl ClosedMiner for LcmMiner {
    fn name(&self) -> &'static str {
        "lcm"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let n = db.num_transactions() as u32;
        let mut out = Vec::new();
        if n == 0 || db.num_items() == 0 {
            return MiningResult::new();
        }
        let lists = TidLists::from_database(db);
        let all: Vec<Tid> = (0..n).collect();
        // the root of the spanning tree: cl(∅)
        let root = closure_of_tids(db, &all);
        if n >= minsupp && !root.is_empty() {
            out.push(FoundSet::new(ItemSet::from_sorted(root.clone()), n));
        }
        let mut ctx = Ctx {
            db,
            lists: &lists,
            minsupp,
            out,
        };
        // the root's core item is "below item 0"
        expand(&mut ctx, &root, &all, None);
        MiningResult { sets: ctx.out }
    }
}

struct Ctx<'a> {
    db: &'a RecodedDatabase,
    lists: &'a TidLists,
    minsupp: u32,
    out: Vec<FoundSet>,
}

/// Intersection of the transactions indexed by `tids` (must be non-empty).
fn closure_of_tids(db: &RecodedDatabase, tids: &[Tid]) -> Vec<Item> {
    let mut iter = tids.iter();
    let Some(&first) = iter.next() else {
        return Vec::new();
    };
    let mut acc: Vec<Item> = db.transaction(first).to_vec();
    let mut buf: Vec<Item> = Vec::new();
    for &t in iter {
        intersect_into(&acc, db.transaction(t), &mut buf);
        std::mem::swap(&mut acc, &mut buf);
        if acc.is_empty() {
            break;
        }
    }
    acc
}

/// Expands closed set `p` (with cover `tids` and core item `core`) by every
/// admissible ppc-extension.
fn expand(ctx: &mut Ctx<'_>, p: &[Item], tids: &[Tid], core: Option<Item>) {
    let num_items = ctx.db.num_items();
    let start = core.map_or(0, |c| c + 1);
    let mut sub: Vec<Tid> = Vec::new();
    for j in start..num_items {
        if p.binary_search(&j).is_ok() {
            continue;
        }
        intersect_into(tids, ctx.lists.list(j), &mut sub);
        if (sub.len() as u32) < ctx.minsupp {
            continue;
        }
        let q = closure_of_tids(ctx.db, &sub);
        // prefix-preserving check: no item below j may have been added
        let prefix_ok = q
            .iter()
            .take_while(|&&x| x < j)
            .all(|x| p.binary_search(x).is_ok());
        if !prefix_ok {
            continue;
        }
        let support = sub.len() as u32;
        ctx.out
            .push(FoundSet::new(ItemSet::from_sorted(q.clone()), support));
        let sub_tids = sub.clone();
        expand(ctx, &q, &sub_tids, Some(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = LcmMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn no_duplicates_generated() {
        // LCM's defining property: each closed set exactly once, so the raw
        // output (before canonicalize) has no duplicate item sets
        let db = paper_db();
        let got = LcmMiner.mine(&db, 1);
        let mut seen = std::collections::HashSet::new();
        for s in &got.sets {
            assert!(seen.insert(s.items.clone()), "duplicate {:?}", s.items);
        }
    }

    #[test]
    fn root_closure_reported() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1], vec![0, 2]], 3);
        let got = LcmMiner.mine(&db, 2).canonicalized();
        // only {0} is closed with support 2
        assert_eq!(got.len(), 1);
        assert_eq!(got.support_of(&ItemSet::from([0])), Some(2));
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 2);
        assert!(LcmMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(LcmMiner.name(), "lcm");
    }
}

//! LCM-style closed set mining by prefix-preserving closure extension
//! (Uno, Asai, Uchida & Arimura, FIMI'03/'04).
//!
//! LCM enumerates closed sets *directly*, without a repository or a
//! post-filter: every closed set has a unique parent in a spanning tree of
//! the closed-set lattice, defined through the *ppc-extension* (prefix
//! preserving closure extension). From a closed set `P` with core item `i`,
//! the children are the closures `Q = cl(P ∪ {j})` for items `j > i`,
//! `j ∉ P`, that satisfy the prefix condition `Q ∩ {0..j} = P ∩ {0..j}` —
//! i.e. the closure adds no item below `j`. Each closed set is generated
//! exactly once, so the traversal needs no duplicate detection and runs in
//! time linear in the number of closed sets (for bounded item frequency).
//!
//! [`LcmMiner`] folds in two CbO-style speed-ups from the LCM/FCA
//! correspondence (arXiv 2010.06980), where the ppc-condition is CbO's
//! canonicity test:
//!
//! 1. **First-failure canonicity testing.** The prefix condition is
//!    equivalent to: no item `x < j`, `x ∉ P`, contains the candidate
//!    cover (`sub ⊆ list(x)`). Testing that column-wise — one tid-list
//!    containment per `x`, exiting on the first missing tid — rejects
//!    non-canonical extensions *without ever computing their closure*,
//!    where the classic formulation pays a full multi-transaction
//!    intersection first and checks the prefix afterwards.
//! 2. **Closure reuse across ppc-extensions.** When the canonicity test
//!    passes, the parent closure `P` is already known to be contained in
//!    every transaction of the candidate cover (`sub ⊆ cover(P)`), and no
//!    item below `j` can enter. The child closure is therefore
//!    `P ∪ {j} ∪ acc` with `acc` seeded from only the items `> j, ∉ P` of
//!    one covering transaction — the `|P|` prefix items are reused, never
//!    re-derived by intersection.
//!
//! [`LcmClassicMiner`] (`lcm-noreuse`) keeps the original
//! closure-first formulation as the ablation baseline, so the E16 bench
//! can measure what the two speed-ups buy.

use fim_core::{
    itemset::{intersect_into, is_subset},
    ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase, Tid, TidLists,
};
use fim_obs::{Counter, Counters};

/// The LCM-style miner with the CbO speed-ups (canonicity-first testing
/// and closure reuse).
#[derive(Clone, Copy, Debug, Default)]
pub struct LcmMiner;

/// The pre-CbO formulation: full closure computation first, prefix check
/// second. Kept as the `lcm-noreuse` ablation.
#[derive(Clone, Copy, Debug, Default)]
pub struct LcmClassicMiner;

impl ClosedMiner for LcmMiner {
    fn name(&self) -> &'static str {
        "lcm"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        self.mine_with_stats(db, minsupp).0
    }
}

impl LcmMiner {
    /// Like [`ClosedMiner::mine`] but also returns the counters; the
    /// `closure_reuses` slot counts closures never computed (canonicity
    /// rejections that exited early) plus prefix items reused from the
    /// parent closure instead of re-derived.
    pub fn mine_with_stats(&self, db: &RecodedDatabase, minsupp: u32) -> (MiningResult, Counters) {
        mine_impl(db, minsupp, true)
    }
}

impl ClosedMiner for LcmClassicMiner {
    fn name(&self) -> &'static str {
        "lcm-noreuse"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        mine_impl(db, minsupp, false).0
    }
}

fn mine_impl(db: &RecodedDatabase, minsupp: u32, cbo: bool) -> (MiningResult, Counters) {
    let minsupp = minsupp.max(1);
    let n = db.num_transactions() as u32;
    let mut counters = Counters::new();
    if n == 0 || db.num_items() == 0 {
        return (MiningResult::new(), counters);
    }
    let lists = TidLists::from_database(db);
    let all: Vec<Tid> = (0..n).collect();
    // the root of the spanning tree: cl(∅)
    let root = closure_of_tids(db, &all);
    let mut out = Vec::new();
    if n >= minsupp && !root.is_empty() {
        out.push(FoundSet::new(ItemSet::from_sorted(root.clone()), n));
    }
    let mut ctx = Ctx {
        db,
        lists: &lists,
        minsupp,
        out,
        cbo,
        counters: &mut counters,
    };
    // the root's core item is "below item 0"
    expand(&mut ctx, &root, &all, None);
    (MiningResult { sets: ctx.out }, counters)
}

struct Ctx<'a> {
    db: &'a RecodedDatabase,
    lists: &'a TidLists,
    minsupp: u32,
    out: Vec<FoundSet>,
    cbo: bool,
    counters: &'a mut Counters,
}

/// Intersection of the transactions indexed by `tids` (must be non-empty).
fn closure_of_tids(db: &RecodedDatabase, tids: &[Tid]) -> Vec<Item> {
    let mut iter = tids.iter();
    let Some(&first) = iter.next() else {
        return Vec::new();
    };
    let mut acc: Vec<Item> = db.transaction(first).to_vec();
    let mut buf: Vec<Item> = Vec::new();
    for &t in iter {
        intersect_into(&acc, db.transaction(t), &mut buf);
        std::mem::swap(&mut acc, &mut buf);
        if acc.is_empty() {
            break;
        }
    }
    acc
}

/// The CbO canonicity test: the extension of `p` by `j` with cover `sub`
/// is canonical iff no item `x < j` outside `p` covers all of `sub`. Each
/// containment test exits at the first tid of `sub` missing from
/// `list(x)` — the "first failure".
fn canonical(ctx: &Ctx<'_>, p: &[Item], j: Item, sub: &[Tid]) -> bool {
    (0..j)
        .filter(|x| p.binary_search(x).is_err())
        .all(|x| !is_subset(sub, ctx.lists.list(x)))
}

/// The child closure, reusing the parent: `p ∪ {j} ∪ acc`, where `acc`
/// holds the items `> j`, `∉ p` present in every transaction of `sub`.
/// Valid because every transaction of `sub` contains `p ∪ {j}` and the
/// canonicity test ruled out additions below `j`.
fn closure_above(db: &RecodedDatabase, p: &[Item], j: Item, sub: &[Tid]) -> Vec<Item> {
    let first = db.transaction(sub[0]);
    let gt = first.partition_point(|&x| x <= j);
    let mut acc: Vec<Item> = first[gt..]
        .iter()
        .copied()
        .filter(|x| p.binary_search(x).is_err())
        .collect();
    let mut buf: Vec<Item> = Vec::new();
    for &t in &sub[1..] {
        if acc.is_empty() {
            break;
        }
        intersect_into(&acc, db.transaction(t), &mut buf);
        std::mem::swap(&mut acc, &mut buf);
    }
    // merge p with the (disjoint, all > j … mostly) additions j ∪ acc
    let mut add = Vec::with_capacity(acc.len() + 1);
    add.push(j);
    add.extend_from_slice(&acc);
    let mut q = Vec::with_capacity(p.len() + add.len());
    let (mut a, mut b) = (0usize, 0usize);
    while a < p.len() && b < add.len() {
        if p[a] < add[b] {
            q.push(p[a]);
            a += 1;
        } else {
            q.push(add[b]);
            b += 1;
        }
    }
    q.extend_from_slice(&p[a..]);
    q.extend_from_slice(&add[b..]);
    q
}

/// Expands closed set `p` (with cover `tids` and core item `core`) by every
/// admissible ppc-extension.
fn expand(ctx: &mut Ctx<'_>, p: &[Item], tids: &[Tid], core: Option<Item>) {
    let num_items = ctx.db.num_items();
    let start = core.map_or(0, |c| c + 1);
    let mut sub: Vec<Tid> = Vec::new();
    for j in start..num_items {
        if p.binary_search(&j).is_ok() {
            continue;
        }
        intersect_into(tids, ctx.lists.list(j), &mut sub);
        if (sub.len() as u32) < ctx.minsupp {
            continue;
        }
        let q = if ctx.cbo {
            if !canonical(ctx, p, j, &sub) {
                // closure never computed for this rejected extension
                ctx.counters.bump(Counter::ClosureReuses);
                continue;
            }
            // the |p| prefix items are reused, not re-intersected
            ctx.counters.add(Counter::ClosureReuses, p.len() as u64);
            closure_above(ctx.db, p, j, &sub)
        } else {
            let q = closure_of_tids(ctx.db, &sub);
            // prefix-preserving check: no item below j may have been added
            let prefix_ok = q
                .iter()
                .take_while(|&&x| x < j)
                .all(|x| p.binary_search(x).is_ok());
            if !prefix_ok {
                continue;
            }
            q
        };
        let support = sub.len() as u32;
        ctx.out
            .push(FoundSet::new(ItemSet::from_sorted(q.clone()), support));
        let sub_tids = sub.clone();
        expand(ctx, &q, &sub_tids, Some(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = LcmMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
            let classic = LcmClassicMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(classic, want, "classic minsupp={minsupp}");
        }
    }

    #[test]
    fn no_duplicates_generated() {
        // LCM's defining property: each closed set exactly once, so the raw
        // output (before canonicalize) has no duplicate item sets
        let db = paper_db();
        for result in [LcmMiner.mine(&db, 1), LcmClassicMiner.mine(&db, 1)] {
            let mut seen = std::collections::HashSet::new();
            for s in &result.sets {
                assert!(seen.insert(s.items.clone()), "duplicate {:?}", s.items);
            }
        }
    }

    #[test]
    fn cbo_counters_fire() {
        let db = paper_db();
        let (got, counters) = LcmMiner.mine_with_stats(&db, 1);
        assert!(!got.is_empty());
        assert!(counters.get(Counter::ClosureReuses) > 0);
    }

    #[test]
    fn root_closure_reported() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1], vec![0, 2]], 3);
        let got = LcmMiner.mine(&db, 2).canonicalized();
        // only {0} is closed with support 2
        assert_eq!(got.len(), 1);
        assert_eq!(got.support_of(&ItemSet::from([0])), Some(2));
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 2);
        assert!(LcmMiner.mine(&db, 1).is_empty());
        assert!(LcmClassicMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(LcmMiner.name(), "lcm");
        assert_eq!(LcmClassicMiner.name(), "lcm-noreuse");
    }
}

//! The flat-repository cumulative intersection scheme of Mielikäinen
//! (FIMI'03) — the algorithm whose implementation the paper reports as
//! often >100× slower than IsTa because it stores the closed sets in a flat
//! structure instead of a prefix tree.
//!
//! The recursion `C(T ∪ {t}) = C(T) ∪ {t} ∪ {s ∩ t | s ∈ C(T)}` is executed
//! literally: the repository is a hash map from item set to support, every
//! transaction is intersected with *every* stored set, and supports are
//! updated with the same max-merge rule the prefix tree applies per node.

use fim_core::{
    itemset::intersect_into, ClosedMiner, FoundSet, Item, ItemSet, MiningResult, RecodedDatabase,
};
use std::collections::HashMap;

/// The flat cumulative miner (paper §5 comparison point, E7).
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveCumulativeMiner;

impl ClosedMiner for NaiveCumulativeMiner {
    fn name(&self) -> &'static str {
        "naive-cumulative"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let minsupp = minsupp.max(1);
        let mut repo: HashMap<ItemSet, u32> = HashMap::new();
        let mut buf: Vec<Item> = Vec::new();
        for t in db.transactions() {
            // gather, per distinct intersection, the maximum support of any
            // stored set producing it
            let mut updates: HashMap<ItemSet, u32> = HashMap::new();
            for (s, &supp) in &repo {
                intersect_into(s.as_slice(), t, &mut buf);
                if buf.is_empty() {
                    continue;
                }
                let key = ItemSet::from_sorted(buf.clone());
                let e = updates.entry(key).or_insert(0);
                if *e < supp {
                    *e = supp;
                }
            }
            // the transaction itself is one of the new closed sets
            updates.entry(ItemSet::from_sorted(t.to_vec())).or_insert(0);
            for (items, max_source) in updates {
                repo.insert(items, max_source + 1);
            }
        }
        MiningResult {
            sets: repo
                .into_iter()
                .filter(|&(_, supp)| supp >= minsupp)
                .map(|(items, supp)| FoundSet::new(items, supp))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    fn paper_db() -> RecodedDatabase {
        RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2],
                vec![0, 3, 4],
                vec![1, 2, 3],
                vec![0, 1, 2, 3],
                vec![1, 2],
                vec![0, 1, 3],
                vec![3, 4],
                vec![2, 3, 4],
            ],
            5,
        )
    }

    #[test]
    fn matches_reference_all_minsupps() {
        let db = paper_db();
        for minsupp in 1..=8 {
            let want = mine_reference(&db, minsupp);
            let got = NaiveCumulativeMiner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "minsupp={minsupp}");
        }
    }

    #[test]
    fn incremental_supports_match_rescan() {
        // the incremental max-merge support rule must agree with scanning
        let db = paper_db();
        let got = NaiveCumulativeMiner.mine(&db, 1);
        for s in &got.sets {
            assert_eq!(db.support(&s.items), s.support, "{:?}", s.items);
        }
    }

    #[test]
    fn duplicate_transactions() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 2]; 3], 3);
        let got = NaiveCumulativeMiner.mine(&db, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got.sets[0].support, 3);
    }

    #[test]
    fn empty_database() {
        let db = RecodedDatabase::from_dense(vec![], 3);
        assert!(NaiveCumulativeMiner.mine(&db, 1).is_empty());
    }

    #[test]
    fn miner_name() {
        assert_eq!(NaiveCumulativeMiner.name(), "naive-cumulative");
    }
}

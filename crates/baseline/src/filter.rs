//! Closedness filtering for miners that enumerate frequent (or candidate
//! closed) item sets.
//!
//! A frequent item set is closed iff no proper superset has the same
//! support (paper §2.3). Since a same-support superset of a frequent set is
//! itself frequent, it suffices to compare against the other sets in the
//! collection.

use fim_core::{ConstraintSet, FoundSet, Item, ItemSet, MiningResult};
use std::collections::HashMap;

// The shared post-filter: keeps exactly the sets the constraint bundle
// accepts. Re-exported here so the proptest oracle, the `--no-push` escape
// hatch, and the enumeration miners all share the one implementation in
// `fim_core::constraint`.
pub use fim_core::constraint::{apply_constraints, apply_constraints_owned};

/// Whether a *candidate* (pre-closedness-filter) set may be dropped from an
/// enumeration miner's candidate collection under `cs`.
///
/// Subtle and central to the eclat/dEclat push: [`filter_closed`] decides
/// closedness by looking for same-support supersets *within the
/// collection*, so a candidate may only be dropped when doing so can never
/// remove the same-support superset of a surviving, constraint-satisfying
/// set. That holds for the monotone and convertible constraints — a
/// superset of a set satisfying must-include / min-size / min-area (at
/// equal support) satisfies them too — but **not** for max-size, which is
/// therefore applied after [`filter_closed`], never here.
pub(crate) fn candidate_prunable(cs: &ConstraintSet, items: &ItemSet, support: u32) -> bool {
    (items.len() as u32) < cs.min_size
        || fim_core::constraint::area(support, items.len()) < cs.min_area
        || !cs.include.is_subset_of(items)
}

/// Whether an enumeration subtree can be cut under `cs`: every candidate in
/// the subtree is a subset of `current ∪ pool` with support at most
/// `supp_bound`, so if that whole envelope cannot satisfy the monotone /
/// convertible constraints, nothing in the subtree can — and (by the same
/// superset argument as [`candidate_prunable`]) nothing in it is needed as
/// a subsumption witness for a surviving set. `current` and `pool` must be
/// sorted ascending.
pub(crate) fn subtree_prunable(
    cs: &ConstraintSet,
    current: &[Item],
    pool: &[Item],
    supp_bound: u32,
) -> bool {
    let max_len = current.len() + pool.len();
    if (max_len as u32) < cs.min_size {
        return true;
    }
    if fim_core::constraint::area(supp_bound, max_len) < cs.min_area {
        return true;
    }
    // every include item must be reachable: already taken or still in the pool
    cs.include
        .iter()
        .any(|m| current.binary_search(&m).is_err() && pool.binary_search(&m).is_err())
}

/// Filters a collection of frequent item sets (with exact supports) down to
/// the closed ones: a set survives iff no *other* set in the collection is a
/// proper superset with equal support.
///
/// The input must contain every frequent item set's closure (this holds for
/// the complete frequent collection, and for closure-candidate collections
/// like FP-close's); duplicates of the same item set are merged first.
pub fn filter_closed(sets: Vec<FoundSet>) -> MiningResult {
    // dedup identical item sets (supports are exact, so they must agree)
    let mut dedup: HashMap<fim_core::ItemSet, u32> = HashMap::with_capacity(sets.len());
    for s in sets {
        if let Some(prev) = dedup.insert(s.items.clone(), s.support) {
            debug_assert_eq!(prev, s.support, "inconsistent supports for {:?}", s.items);
        }
    }
    // group by support: only equal-support supersets can subsume
    let mut by_support: HashMap<u32, Vec<&fim_core::ItemSet>> = HashMap::new();
    for (items, supp) in &dedup {
        by_support.entry(*supp).or_default().push(items);
    }
    // within each group, longer sets can never be subsumed by shorter ones;
    // sort descending by length so each set is only checked against the
    // candidates that could subsume it
    let mut result = MiningResult::new();
    for (supp, mut group) in by_support {
        group.sort_unstable_by_key(|s| std::cmp::Reverse(s.len()));
        for (idx, items) in group.iter().enumerate() {
            let subsumed = group[..idx]
                .iter()
                .any(|other| other.len() > items.len() && items.is_subset_of(other));
            if !subsumed {
                result.sets.push(FoundSet::new((*items).clone(), supp));
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::ItemSet;

    #[test]
    fn removes_subsumed_sets() {
        let sets = vec![
            FoundSet::new(ItemSet::from([0]), 3),
            FoundSet::new(ItemSet::from([0, 1]), 3),
            FoundSet::new(ItemSet::from([1]), 4),
        ];
        let r = filter_closed(sets).canonicalized();
        assert_eq!(r.len(), 2);
        assert_eq!(r.support_of(&ItemSet::from([0, 1])), Some(3));
        assert_eq!(r.support_of(&ItemSet::from([1])), Some(4));
        assert_eq!(r.support_of(&ItemSet::from([0])), None);
    }

    #[test]
    fn different_support_does_not_subsume() {
        let sets = vec![
            FoundSet::new(ItemSet::from([0]), 5),
            FoundSet::new(ItemSet::from([0, 1]), 3),
        ];
        let r = filter_closed(sets);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn duplicates_merged() {
        let sets = vec![
            FoundSet::new(ItemSet::from([2]), 2),
            FoundSet::new(ItemSet::from([2]), 2),
        ];
        let r = filter_closed(sets);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn chain_of_subsumption() {
        let sets = vec![
            FoundSet::new(ItemSet::from([0]), 2),
            FoundSet::new(ItemSet::from([0, 1]), 2),
            FoundSet::new(ItemSet::from([0, 1, 2]), 2),
        ];
        let r = filter_closed(sets);
        assert_eq!(r.len(), 1);
        assert_eq!(r.sets[0].items, ItemSet::from([0, 1, 2]));
    }

    #[test]
    fn empty_input() {
        assert!(filter_closed(vec![]).is_empty());
    }

    #[test]
    fn incomparable_same_support_sets_both_survive() {
        let sets = vec![
            FoundSet::new(ItemSet::from([0, 1]), 2),
            FoundSet::new(ItemSet::from([2, 3]), 2),
        ];
        let r = filter_closed(sets);
        assert_eq!(r.len(), 2);
    }
}

//! Density-adaptive tid-set kernels shared by the vertical miners.
//!
//! [`EclatMiner`](crate::EclatMiner) and [`DEclatMiner`](crate::DEclatMiner)
//! both walk the item set lattice carrying one transaction-id set per
//! frontier item; the only operations they need are "how many transactions"
//! (support), set intersection, and set difference. [`TidSetKernel`]
//! abstracts those three so one recursion serves three physical layouts:
//!
//! * [`ScalarKernel`] — sorted `Vec<Tid>` with linear merges (the classic
//!   layout, and the baseline every other kernel must match exactly).
//! * [`GallopKernel`] — sorted `Vec<Tid>` with galloping (exponential
//!   search) merges, which win when one operand is much shorter than the
//!   other — the sparse-database regime.
//! * [`BitsetKernel`] — packed [`WordSet`] bitsets with word-AND/ANDNOT
//!   plus popcount, which win when tid sets cover a sizable fraction of a
//!   small transaction universe — the dense few-transaction regime this
//!   workspace targets.
//!
//! All kernels are output-invariant: the cross-kernel proptest suite pins
//! byte-identical [`fim_core::MiningResult`]s. The kernels account their
//! work in the shared [`Counters`] registry (`tid_intersections` for every
//! merge regardless of layout, plus `words_anded`/`popcount_calls` for the
//! bitset layout and `gallop_probes` for the galloping one), which is what
//! the `kernel` section of the metrics JSON reports.

use fim_core::{gallop_advance, gallop_intersect_into, itemset::intersect_into, Tid, WordSet};
use fim_obs::{Counter, Counters};

/// The tid-set operations a vertical lattice walk needs, monomorphized per
/// physical layout.
pub trait TidSetKernel {
    /// The physical transaction-id set.
    type Set: Clone;

    /// Builds a set from a strictly ascending tid list.
    fn pack_list(&self, tids: &[Tid]) -> Self::Set;

    /// An empty set (reused as the merge scratch buffer).
    fn empty(&self) -> Self::Set;

    /// Number of transactions in the set.
    fn support(&self, s: &Self::Set) -> u32;

    /// `buf = a ∩ b`; returns the support of the result.
    fn intersect(&self, a: &Self::Set, b: &Self::Set, buf: &mut Self::Set, c: &mut Counters)
        -> u32;

    /// `buf = a − b`; returns the size of the result (for the diffset
    /// recurrence `supp(P ∪ {i,j}) = supp(P ∪ {i}) − |d(P ∪ {i,j})|`).
    fn diff(&self, a: &Self::Set, b: &Self::Set, buf: &mut Self::Set, c: &mut Counters) -> u32;
}

/// `out = a − b` on strictly ascending slices (linear merge).
pub fn diff_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j == b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
}

/// `out = a − b` with galloping cursor advances through `b`; returns the
/// probe count. Output-identical to [`diff_into`].
pub fn gallop_diff_into(a: &[Tid], b: &[Tid], out: &mut Vec<Tid>) -> u64 {
    out.clear();
    let mut probes = 0u64;
    let mut j = 0usize;
    for &x in a {
        let (nj, p) = gallop_advance(b, j, x);
        probes += p;
        j = nj;
        if j == b.len() || b[j] != x {
            out.push(x);
        }
    }
    probes
}

/// Sorted `Vec<Tid>` with linear merges.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarKernel;

impl TidSetKernel for ScalarKernel {
    type Set = Vec<Tid>;

    fn pack_list(&self, tids: &[Tid]) -> Vec<Tid> {
        tids.to_vec()
    }

    fn empty(&self) -> Vec<Tid> {
        Vec::new()
    }

    fn support(&self, s: &Vec<Tid>) -> u32 {
        s.len() as u32
    }

    fn intersect(&self, a: &Vec<Tid>, b: &Vec<Tid>, buf: &mut Vec<Tid>, c: &mut Counters) -> u32 {
        c.bump(Counter::TidIntersections);
        intersect_into(a, b, buf);
        buf.len() as u32
    }

    fn diff(&self, a: &Vec<Tid>, b: &Vec<Tid>, buf: &mut Vec<Tid>, c: &mut Counters) -> u32 {
        c.bump(Counter::TidIntersections);
        diff_into(a, b, buf);
        buf.len() as u32
    }
}

/// Sorted `Vec<Tid>` with galloping merges.
#[derive(Clone, Copy, Debug, Default)]
pub struct GallopKernel;

impl TidSetKernel for GallopKernel {
    type Set = Vec<Tid>;

    fn pack_list(&self, tids: &[Tid]) -> Vec<Tid> {
        tids.to_vec()
    }

    fn empty(&self) -> Vec<Tid> {
        Vec::new()
    }

    fn support(&self, s: &Vec<Tid>) -> u32 {
        s.len() as u32
    }

    fn intersect(&self, a: &Vec<Tid>, b: &Vec<Tid>, buf: &mut Vec<Tid>, c: &mut Counters) -> u32 {
        c.bump(Counter::TidIntersections);
        let probes = gallop_intersect_into(a, b, buf);
        c.add(Counter::GallopProbes, probes);
        buf.len() as u32
    }

    fn diff(&self, a: &Vec<Tid>, b: &Vec<Tid>, buf: &mut Vec<Tid>, c: &mut Counters) -> u32 {
        c.bump(Counter::TidIntersections);
        let probes = gallop_diff_into(a, b, buf);
        c.add(Counter::GallopProbes, probes);
        buf.len() as u32
    }
}

/// Packed [`WordSet`] bitsets over a fixed transaction universe.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitsetKernel {
    /// Number of transactions (the bitset universe).
    pub universe: u32,
}

impl BitsetKernel {
    /// Per-call accounting shared by [`Self::intersect`] and [`Self::diff`]:
    /// one fused AND(-NOT)+popcount pass over the whole word array.
    fn account(&self, buf: &WordSet, c: &mut Counters) {
        c.bump(Counter::TidIntersections);
        c.add(Counter::WordsAnded, buf.words().len() as u64);
        c.bump(Counter::PopcountCalls);
    }
}

impl TidSetKernel for BitsetKernel {
    type Set = WordSet;

    fn pack_list(&self, tids: &[Tid]) -> WordSet {
        WordSet::from_sorted(tids, self.universe as usize)
    }

    fn empty(&self) -> WordSet {
        WordSet::new(self.universe as usize)
    }

    fn support(&self, s: &WordSet) -> u32 {
        s.count()
    }

    fn intersect(&self, a: &WordSet, b: &WordSet, buf: &mut WordSet, c: &mut Counters) -> u32 {
        buf.clone_from(a);
        let supp = buf.and_in_place(b);
        self.account(buf, c);
        supp
    }

    fn diff(&self, a: &WordSet, b: &WordSet, buf: &mut WordSet, c: &mut Counters) -> u32 {
        buf.clone_from(a);
        let size = buf.andnot_in_place(b);
        self.account(buf, c);
        size
    }
}

/// Runs `$body` with `$k` bound to the kernel matching
/// `$rep: fim_core::Representation` (each arm monomorphizes separately).
macro_rules! with_kernel {
    ($rep:expr, $n:expr, |$k:ident| $body:expr) => {
        match $rep {
            fim_core::Representation::Bitset => {
                let $k = $crate::kernel::BitsetKernel { universe: $n };
                $body
            }
            fim_core::Representation::Gallop => {
                let $k = $crate::kernel::GallopKernel;
                $body
            }
            fim_core::Representation::Scalar => {
                let $k = $crate::kernel::ScalarKernel;
                $body
            }
        }
    };
}
pub(crate) use with_kernel;

#[cfg(test)]
mod tests {
    use super::*;

    const A: &[Tid] = &[0, 3, 5, 63, 64, 65, 100];
    const B: &[Tid] = &[3, 5, 64, 99, 100, 101];

    fn check_kernel<K: TidSetKernel>(kernel: &K) {
        let mut c = Counters::new();
        let a = kernel.pack_list(A);
        let b = kernel.pack_list(B);
        assert_eq!(kernel.support(&a), 7);
        let mut buf = kernel.empty();
        assert_eq!(kernel.intersect(&a, &b, &mut buf, &mut c), 4); // 3,5,64,100
        assert_eq!(kernel.diff(&a, &b, &mut buf, &mut c), 3); // 0,63,65
        assert_eq!(kernel.diff(&b, &a, &mut buf, &mut c), 2); // 99,101
        assert!(c.get(Counter::TidIntersections) == 3);
    }

    #[test]
    fn all_kernels_agree_on_the_same_lists() {
        check_kernel(&ScalarKernel);
        check_kernel(&GallopKernel);
        check_kernel(&BitsetKernel { universe: 102 });
    }

    #[test]
    fn gallop_diff_matches_linear_diff() {
        let mut lin = Vec::new();
        let mut gal = Vec::new();
        let cases: &[(&[Tid], &[Tid])] = &[
            (A, B),
            (B, A),
            (&[], B),
            (A, &[]),
            (&[1, 2, 3], &[1, 2, 3]),
            (&[0, 200], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 100, 150, 200]),
        ];
        for (a, b) in cases {
            diff_into(a, b, &mut lin);
            let probes = gallop_diff_into(a, b, &mut gal);
            assert_eq!(lin, gal, "a={a:?} b={b:?}");
            assert!(a.is_empty() || probes > 0);
        }
    }

    #[test]
    fn bitset_kernel_accounts_words_and_popcounts() {
        let k = BitsetKernel { universe: 130 };
        let mut c = Counters::new();
        let a = k.pack_list(&[0, 64, 128]);
        let b = k.pack_list(&[64]);
        let mut buf = k.empty();
        assert_eq!(k.intersect(&a, &b, &mut buf, &mut c), 1);
        assert_eq!(c.get(Counter::WordsAnded), 3); // ⌈130/64⌉ words
        assert_eq!(c.get(Counter::PopcountCalls), 1);
    }
}

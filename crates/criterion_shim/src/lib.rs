//! A minimal, dependency-free, offline drop-in for the subset of the
//! `criterion` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `criterion` dev-dependency to this crate by path. Each
//! benchmark is timed with plain wall-clock sampling (median of N samples,
//! each sample auto-calibrated to run ≥ ~20 ms) and printed as one line —
//! no statistics, plots, or baselines. Filters passed by `cargo bench`
//! (substring argument) are honored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // calibrate: find an iteration count that runs at least ~20 ms
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(20) || iters >= 1 << 20 {
                break t / iters as u32;
            }
            iters = iters.saturating_mul(2);
        };
        let _ = per_iter;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.elapsed.push(start.elapsed() / iters as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.elapsed.is_empty() {
            return None;
        }
        self.elapsed.sort_unstable();
        Some(self.elapsed[self.elapsed.len() / 2])
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Reads the `cargo bench` substring filter from argv (upstream
    /// `configure_from_args` equivalent, minus option flags).
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(id.to_string(), sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_id: String, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples,
            elapsed: Vec::new(),
        };
        f(&mut b);
        match b.median() {
            Some(t) => println!("bench: {full_id:<60} {t:>12.3?}/iter"),
            None => println!("bench: {full_id:<60} (no measurement)"),
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, samples, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream requires this; here it is a no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring upstream
/// `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring upstream `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("parm", 3), &3u64, |b, &n| b.iter(|| n * 2));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn runs_without_panicking() {
        let mut c = Criterion {
            filter: Some("sum".into()),
            sample_size: 2,
        };
        trivial(&mut c);
        let mut c2 = Criterion {
            sample_size: 1,
            ..Default::default()
        };
        trivial(&mut c2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

//! Algorithm shoot-out: every miner in the workspace on the same
//! few-transactions/many-items data set, with timings and a cross-check
//! that all outputs are identical — a miniature of the paper's §5
//! evaluation.
//!
//! Run with: `cargo run --release --example algorithm_shootout`

use closed_fim::prelude::*;
use closed_fim::synth::Preset;

fn main() {
    // a small NCBI60-like instance every algorithm can handle
    let db = Preset::Ncbi60.build(0.15, 1);
    println!(
        "data: {} ({} transactions, {} items)",
        Preset::Ncbi60.name(),
        db.num_transactions(),
        db.num_items()
    );
    let minsupp = 6;

    let miners: Vec<(&str, Box<dyn ClosedMiner>)> = vec![
        ("ista", Box::new(IstaMiner::default())),
        ("carpenter-table", Box::new(CarpenterTableMiner::default())),
        ("carpenter-lists", Box::new(CarpenterListMiner::default())),
        ("fpclose", Box::new(FpCloseMiner)),
        ("lcm", Box::new(LcmMiner)),
        ("eclat", Box::new(EclatMiner::default())),
        ("naive-cumulative", Box::new(NaiveCumulativeMiner)),
    ];

    println!("\n{:>18} {:>12} {:>10}", "algorithm", "time", "sets");
    let mut reference: Option<MiningResult> = None;
    for (name, miner) in miners {
        let start = std::time::Instant::now();
        let result = mine_closed(&db, minsupp, miner.as_ref());
        let elapsed = start.elapsed().as_secs_f64();
        println!("{name:>18} {elapsed:>11.3}s {:>10}", result.len());
        match &reference {
            None => reference = Some(result),
            Some(r) => assert_eq!(r, &result, "{name} disagrees!"),
        }
    }
    println!("\nall algorithms produced the identical closed-set collection");
}

//! Quickstart: mine closed frequent item sets from a small market-basket
//! database with IsTa, the paper's cumulative intersection algorithm.
//!
//! Run with: `cargo run --example quickstart`

use closed_fim::prelude::*;

fn main() {
    // The example database of the paper (Table 1): 8 baskets over the
    // items a–e.
    let db = TransactionDatabase::from_named(&[
        vec!["a", "b", "c"],
        vec!["a", "d", "e"],
        vec!["b", "c", "d"],
        vec!["a", "b", "c", "d"],
        vec!["b", "c"],
        vec!["a", "b", "d"],
        vec!["d", "e"],
        vec!["c", "d", "e"],
    ]);

    // Mine all closed item sets appearing in at least 3 baskets. The
    // result is decoded back to the database's item codes.
    let minsupp = 3;
    let result = mine_closed(&db, minsupp, &IstaMiner::default());

    println!("closed item sets with support >= {minsupp}:");
    for found in &result.sets {
        let names: Vec<&str> = found
            .items
            .iter()
            .map(|code| db.catalog().name(code).unwrap())
            .collect();
        println!("  {{{}}}  support {}", names.join(", "), found.support);
    }

    // Every other algorithm in the workspace produces the identical answer;
    // here is the table-based Carpenter as a cross-check.
    let carpenter = mine_closed(&db, minsupp, &CarpenterTableMiner::default());
    assert_eq!(result, carpenter);
    println!("\ncarpenter-table agrees: {} sets", carpenter.len());

    // Closed sets preserve all support information: the support of any
    // frequent set is the maximum support of a closed superset (paper §2.3).
    let oracle = closed_fim::rules::ClosedSupportOracle::new(&result);
    let b = db.catalog().code("b").unwrap();
    let c = db.catalog().code("c").unwrap();
    let bc = ItemSet::from([b, c]);
    println!(
        "\nreconstructed support of {{b, c}}: {:?} (direct count: {})",
        oracle.support_of(&bc),
        db.support(&bc)
    );
}

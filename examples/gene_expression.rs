//! Gene-expression analysis (paper §4): generate a yeast-compendium-like
//! expression matrix, discretize it with the paper's ±0.2 thresholds in
//! the genes-as-items direction (few transactions, very many items), and
//! mine the closed frequent item sets — the co-expressed gene groups.
//!
//! Run with: `cargo run --release --example gene_expression`

use closed_fim::prelude::*;
use closed_fim::synth::{ExpressionConfig, ExpressionMatrix};

fn main() {
    // A scaled-down compendium: 800 genes under 40 conditions with planted
    // co-expression modules (the full paper shape is 6316 × 300).
    let config = ExpressionConfig {
        genes: 800,
        conditions: 40,
        modules: 8,
        module_genes: 60,
        module_conditions: 10,
        signal: 0.6,
        noise_sd: 0.11,
        coherence: 0.9,
        gene_bias_sd: 0.08,
        seed: 42,
    };
    let matrix = ExpressionMatrix::generate(&config);
    println!(
        "expression matrix: {} genes x {} conditions",
        matrix.genes(),
        matrix.conditions()
    );

    // Discretize: conditions become transactions, genes become items
    // (item 2g = gene g over-expressed, item 2g+1 = under-expressed).
    let db = matrix.discretize_genes_as_items(0.2);
    println!(
        "transaction database: {} transactions (conditions), {} items (gene states), avg width {:.0}",
        db.num_transactions(),
        db.num_items(),
        db.total_occurrences() as f64 / db.num_transactions() as f64
    );

    // Mine with IsTa; this is the regime where intersection beats
    // enumeration (paper §5).
    let minsupp = 6;
    let start = std::time::Instant::now();
    let result = mine_closed(&db, minsupp, &IstaMiner::default());
    println!(
        "\nista: {} closed gene-state sets with support >= {minsupp} in {:.3}s",
        result.len(),
        start.elapsed().as_secs_f64()
    );

    // Cross-check with the table-based Carpenter.
    let start = std::time::Instant::now();
    let carpenter = mine_closed(&db, minsupp, &CarpenterTableMiner::default());
    assert_eq!(result, carpenter, "algorithms must agree");
    println!(
        "carpenter-table agrees in {:.3}s",
        start.elapsed().as_secs_f64()
    );

    // The largest co-expressed groups: closed sets trade off size against
    // support; show the biggest ones among the well-supported.
    let mut by_size: Vec<_> = result.sets.iter().collect();
    by_size.sort_by_key(|s| std::cmp::Reverse((s.items.len(), s.support)));
    println!("\nlargest co-expressed gene-state groups:");
    for s in by_size.iter().take(5) {
        let over = s.items.iter().filter(|i| i % 2 == 0).count();
        let under = s.items.len() - over;
        println!(
            "  {} genes ({} over-, {} under-expressed) across {} conditions",
            s.items.len(),
            over,
            under,
            s.support
        );
    }
}

//! Incremental mining: the cumulative intersection scheme processes one
//! transaction at a time, so the closed-set repository can be queried at
//! any point of a stream — something the enumeration miners cannot do
//! without re-running from scratch. This example simulates a stream of
//! experimental conditions arriving one by one and re-inspects the
//! co-expression structure after each arrival.
//!
//! Run with: `cargo run --release --example incremental_stream`

use closed_fim::ista::IstaStream;
use closed_fim::prelude::*;
use closed_fim::synth::Preset;

fn main() {
    let db = Preset::Ncbi60.build(0.12, 7);
    println!(
        "streaming {} conditions over {} gene-state items\n",
        db.num_transactions(),
        db.num_items()
    );

    let mut stream = IstaStream::new(db.num_items() as u32);
    let minsupp = 4;
    let probe: ItemSet = {
        // track an arbitrary frequent pair of gene states
        let freq = db.item_frequencies();
        let mut by: Vec<(u32, u32)> = freq
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i as u32))
            .collect();
        by.sort_unstable_by(|a, b| b.cmp(a));
        ItemSet::from([by[0].1, by[1].1])
    };

    println!(
        "{:>6} {:>14} {:>14} {:>16}",
        "tx", "repo nodes", "closed>=4", "probe support"
    );
    for (k, t) in db.transactions().iter().enumerate() {
        let items: Vec<u32> = t.iter().collect();
        stream.push_sorted(&items);
        if (k + 1) % 5 == 0 || k + 1 == db.num_transactions() {
            let closed = stream.closed_sets(minsupp);
            println!(
                "{:>6} {:>14} {:>14} {:>16}",
                k + 1,
                stream.node_count(),
                closed.len(),
                stream.support_of(&probe)
            );
        }
    }

    // the final stream state equals a batch run over the whole database
    let batch = mine_closed(&db, minsupp, &IstaMiner::default());
    let streamed = stream.closed_sets(minsupp);
    // batch results are decoded to raw codes; the stream already works on
    // raw codes because we pushed raw transactions
    assert_eq!(batch, streamed);
    println!(
        "\nstream result equals batch mining: {} closed sets",
        batch.len()
    );
}

//! Market-basket association rules (paper §1–2): generate Quest-style
//! baskets, mine the closed frequent item sets, and derive association
//! rules with confidence and lift — without ever materializing the full
//! set of frequent item sets, because closed sets preserve all supports.
//!
//! Run with: `cargo run --release --example market_basket_rules`

use closed_fim::prelude::*;
use closed_fim::synth::quest::{self, QuestConfig};

fn main() {
    let config = QuestConfig {
        transactions: 5_000,
        items: 200,
        avg_transaction_len: 4,
        patterns: 80,
        avg_pattern_len: 4,
        keep_prob: 0.8,
        zipf: 0.7,
        seed: 9,
    };
    let db = quest::generate(&config);
    println!(
        "baskets: {}, products: {}, avg basket size {:.1}",
        db.num_transactions(),
        db.num_items(),
        db.total_occurrences() as f64 / db.num_transactions() as f64
    );

    // This direction (many transactions, few items) is enumeration
    // territory — LCM does well here, illustrating the paper's point that
    // the winner depends on the data shape.
    let minsupp = 40;
    let t0 = std::time::Instant::now();
    let closed_lcm = mine_closed(&db, minsupp, &LcmMiner);
    let t_lcm = t0.elapsed();
    let t0 = std::time::Instant::now();
    let closed_ista = mine_closed(&db, minsupp, &IstaMiner::default());
    let t_ista = t0.elapsed();
    assert_eq!(closed_lcm, closed_ista);
    println!(
        "closed sets with support >= {minsupp}: {} (lcm {:.3}s, ista {:.3}s)",
        closed_lcm.len(),
        t_lcm.as_secs_f64(),
        t_ista.as_secs_f64()
    );

    // Rules with at least 60% confidence.
    let rules = RuleMiner::with_confidence(0.6).derive(&closed_lcm, db.num_transactions() as u32);
    println!("\ntop association rules (confidence >= 0.6):");
    for r in rules.iter().take(10) {
        let fmt = |s: &ItemSet| {
            s.iter()
                .map(|i| db.catalog().name(i).unwrap().to_owned())
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "  {{{}}} -> {{{}}}   supp {:>4}  conf {:.2}  lift {:>5.1}",
            fmt(&r.antecedent),
            fmt(&r.consequent),
            r.support,
            r.confidence,
            r.lift
        );
    }
    println!("\n{} rules total", rules.len());
}

//! End-to-end pipelines spanning every crate: generation → file I/O →
//! recoding → mining → rule induction → output formatting, plus the
//! transposition duality of paper §2.5/§4.

use closed_fim::prelude::*;
use closed_fim::synth::{ExpressionConfig, ExpressionMatrix, Preset};

#[test]
fn fimi_roundtrip_preserves_mining_result() {
    let db = Preset::Webview.build(0.03, 2);
    let mut buf = Vec::new();
    closed_fim::io::write_fimi(&db, &mut buf).unwrap();
    let db2 = closed_fim::io::read_fimi(&buf[..]).unwrap();
    // catalogs may assign different codes, so compare by name through the
    // decoded, name-resolved result sets
    let r1 = mine_closed(&db, 2, &IstaMiner::default());
    let r2 = mine_closed(&db2, 2, &IstaMiner::default());
    let names = |r: &MiningResult, db: &TransactionDatabase| -> Vec<(Vec<String>, u32)> {
        let mut v: Vec<(Vec<String>, u32)> = r
            .sets
            .iter()
            .map(|s| {
                let mut names: Vec<String> = s
                    .items
                    .iter()
                    .map(|i| db.catalog().name(i).unwrap().to_owned())
                    .collect();
                names.sort();
                (names, s.support)
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(names(&r1, &db), names(&r2, &db2));
    assert!(!r1.is_empty());
}

#[test]
fn expression_pipeline_mines_planted_modules() {
    // strong planted modules must surface as closed sets covering at least
    // the module's condition count
    let cfg = ExpressionConfig {
        genes: 300,
        conditions: 24,
        modules: 3,
        module_genes: 40,
        module_conditions: 8,
        signal: 0.8,
        noise_sd: 0.05,
        coherence: 1.0,
        gene_bias_sd: 0.0,
        seed: 13,
    };
    let db = ExpressionMatrix::generate(&cfg).discretize_genes_as_items(0.2);
    let result = mine_closed(&db, 6, &IstaMiner::default());
    assert!(!result.is_empty(), "planted modules must be found");
    // at least one found set should span many genes (a module block)
    let max_len = result.max_set_len();
    assert!(max_len >= 20, "expected a large module, best {max_len}");
}

#[test]
fn matrix_io_roundtrip_to_mining() {
    let cfg = ExpressionConfig {
        genes: 120,
        conditions: 16,
        ..Default::default()
    };
    let m = ExpressionMatrix::generate(&cfg);
    let mut buf = Vec::new();
    closed_fim::io::write_matrix(&m, &mut buf).unwrap();
    let m2 = closed_fim::io::read_matrix(&buf[..]).unwrap();
    let a = mine_closed(&m.discretize_genes_as_items(0.2), 3, &IstaMiner::default());
    let b = mine_closed(&m2.discretize_genes_as_items(0.2), 3, &IstaMiner::default());
    assert_eq!(a, b);
}

#[test]
fn transpose_duality_galois() {
    // paper §2.5: closed item sets of T are in bijection with closed tid
    // sets; the closed tid sets of T correspond to closed item sets of the
    // transposed database. Check support/set-size duality on the paper
    // example: every closed set of the transpose, seen as a tid set of the
    // original, has a cover-sized counterpart.
    let db = TransactionDatabase::from_named(&[
        vec!["a", "b", "c"],
        vec!["a", "d", "e"],
        vec!["b", "c", "d"],
        vec!["a", "b", "c", "d"],
        vec!["b", "c"],
        vec!["a", "b", "d"],
        vec!["d", "e"],
        vec!["c", "d", "e"],
    ]);
    let tdb = db.transpose();
    let closed = mine_closed(&db, 1, &IstaMiner::default());
    let tclosed = mine_closed(&tdb, 1, &IstaMiner::default());
    // bijection: for every closed item set I of db with support s and
    // |I| >= 1, its cover K (|K| = s) is a closed "item set" of the
    // transpose with support |I|
    for fs in &closed.sets {
        let cover: ItemSet = db.cover(&fs.items).into_iter().collect();
        assert_eq!(cover.len() as u32, fs.support);
        let dual = tclosed.support_of(&cover);
        assert_eq!(
            dual,
            Some(fs.items.len() as u32),
            "dual of {:?} (cover {:?})",
            fs.items,
            cover
        );
    }
    // and the counts match in both directions
    assert_eq!(closed.len(), tclosed.len());
}

#[test]
fn rules_pipeline_from_preset() {
    let db = Preset::Ncbi60.build(0.08, 21);
    let closed = mine_closed(&db, 4, &CarpenterTableMiner::default());
    let rules = RuleMiner::with_confidence(0.8).derive(&closed, db.num_transactions() as u32);
    for r in &rules {
        // verify confidence against raw counts
        let union = r.antecedent.union(&r.consequent);
        let supp_union = db.support(&union);
        let supp_ante = db.support(&r.antecedent);
        assert_eq!(supp_union, r.support);
        assert!((r.confidence - f64::from(supp_union) / f64::from(supp_ante)).abs() < 1e-12);
        assert!(r.confidence >= 0.8);
    }
}

#[test]
fn results_writer_formats_names() {
    let db = TransactionDatabase::from_named(&[vec!["x", "y"], vec!["x", "y"], vec!["x"]]);
    let result = mine_closed(&db, 2, &IstaMiner::default());
    let mut buf = Vec::new();
    closed_fim::io::write_results(&result, &db, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("x (3)"));
    assert!(text.contains("x y (2)"));
}

//! Kernel equivalence suite: the bitset and galloping intersection
//! kernels are alternative *physical* layouts of the same search, so for
//! every miner that supports representation selection the canonicalized
//! mining result must be byte-identical across `--rep
//! scalar|bitset|gallop` — not merely equivalent, identical. The scalar
//! kernels are separately proven against the brute-force reference miner
//! (each crate's own proptest suite), so scalar is the anchor here and
//! any divergence indicts the non-scalar kernel.
//!
//! The database strategy biases the item universe to `u64` word
//! boundaries (63/64/65, 127/130): off-by-one errors in partial-word
//! masking, prefix-rank word indexing, or the contiguous-run word-AND
//! fast path live exactly there and are invisible on small universes.

use closed_fim::auto::AutoMiner;
use fim_baseline::{DEclatMiner, EclatMiner};
use fim_carpenter::CarpenterListMiner;
use fim_core::{ClosedMiner, MiningResult, RecodedDatabase, Representation};
use fim_ista::{IstaConfig, IstaMiner};
use proptest::collection::vec;
use proptest::prelude::*;

/// Item universes straddling the interesting `u64` word boundaries, plus
/// small ones where every set fits one partial word.
const UNIVERSES: [u32; 8] = [1, 5, 16, 63, 64, 65, 127, 130];

const ALL_REPS: [Representation; 3] = [
    Representation::Scalar,
    Representation::Bitset,
    Representation::Gallop,
];

fn kernel_db() -> impl Strategy<Value = RecodedDatabase> {
    (0usize..UNIVERSES.len()).prop_flat_map(|ui| {
        let m = UNIVERSES[ui];
        // transaction length stays well below the universe: the
        // enumeration miners are exponential in items-per-transaction on
        // few-transaction data at minsupp 1 (the E5 divergence), so the
        // item-rich dense shapes live in the transaction-axis-only test
        let max_len = m.min(30) as usize;
        vec(vec(0..m, 0..=max_len), 0..10).prop_map(move |txs| RecodedDatabase::from_dense(txs, m))
    })
}

/// Canonicalized output of one (miner family, representation) cell.
fn mine_rep(family: &str, rep: Representation, db: &RecodedDatabase, supp: u32) -> MiningResult {
    let miner: Box<dyn ClosedMiner> = match family {
        "eclat" => Box::new(EclatMiner::with_rep(rep)),
        "declat" => Box::new(DEclatMiner::with_rep(rep)),
        "carpenter-lists" => Box::new(CarpenterListMiner::with_rep(rep)),
        "ista" => Box::new(IstaMiner::with_config(IstaConfig::with_rep(rep))),
        other => panic!("unknown family {other}"),
    };
    miner.mine(db, supp).canonicalized()
}

const FAMILIES: [&str; 4] = ["eclat", "declat", "carpenter-lists", "ista"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every kernel of every family reproduces its scalar output exactly,
    /// on universes biased to word boundaries.
    #[test]
    fn kernels_are_output_identical(db in kernel_db(), minsupp in 1u32..5) {
        for family in FAMILIES {
            let want = mine_rep(family, Representation::Scalar, &db, minsupp);
            for rep in [Representation::Bitset, Representation::Gallop] {
                let got = mine_rep(family, rep, &db, minsupp);
                prop_assert_eq!(&got, &want, "family {} rep {}", family, rep);
            }
        }
    }

    /// The dispatcher with a forced kernel agrees with itself across all
    /// three representations (covers the auto-selection mine path).
    #[test]
    fn auto_miner_forced_kernels_agree(db in kernel_db(), minsupp in 1u32..5) {
        let want = AutoMiner::with_rep(Representation::Scalar)
            .mine(&db, minsupp)
            .canonicalized();
        for rep in [Representation::Bitset, Representation::Gallop] {
            let got = AutoMiner::with_rep(rep).mine(&db, minsupp).canonicalized();
            prop_assert_eq!(&got, &want, "rep {}", rep);
        }
        // the unforced dispatcher picks some kernel by density; whatever
        // it picks must also land on the same answer
        let picked = AutoMiner::default().mine(&db, minsupp).canonicalized();
        prop_assert_eq!(&picked, &want);
    }

    /// Item-dense databases drive the *item-axis* bitset fast paths
    /// (whole-word ANDs over packed item sets, contiguous segment runs)
    /// for the transaction-axis families. eclat/declat are excluded by
    /// the same economics as the E14 bench: enumeration over 60–120-item
    /// transactions at minsupp 1 is exponential (8 dense rows already
    /// take minutes), and their bitsets pack *tids*, not items, so this
    /// shape would not exercise their word paths anyway — the
    /// `tid_word_spanning_sets_agree` test below does.
    #[test]
    fn dense_word_spanning_sets_agree(
        txs in vec(vec(0u32..130, 60..=120usize), 1..8),
        minsupp in 1u32..4,
    ) {
        let db = RecodedDatabase::from_dense(txs, 130);
        for family in ["ista", "carpenter-lists"] {
            let want = mine_rep(family, Representation::Scalar, &db, minsupp);
            for rep in [Representation::Bitset, Representation::Gallop] {
                let got = mine_rep(family, rep, &db, minsupp);
                prop_assert_eq!(&got, &want, "family {} rep {}", family, rep);
            }
        }
    }

    /// Transaction-rich databases (60–140 rows over a 12-item universe)
    /// make the *tid* sets of the enumeration miners span 1–3 `u64`
    /// words — the word-boundary regime of the eclat/declat bitset and
    /// galloping kernels, which the item-axis tests cannot reach (their
    /// databases never exceed 10 transactions).
    #[test]
    fn tid_word_spanning_sets_agree(
        txs in vec(vec(0u32..12, 0..=8usize), 60..=140),
        minsupp in 1u32..6,
    ) {
        let db = RecodedDatabase::from_dense(txs, 12);
        for family in ["eclat", "declat"] {
            let want = mine_rep(family, Representation::Scalar, &db, minsupp);
            for rep in [Representation::Bitset, Representation::Gallop] {
                let got = mine_rep(family, rep, &db, minsupp);
                prop_assert_eq!(&got, &want, "family {} rep {}", family, rep);
            }
        }
    }
}

/// Deterministic word-boundary edge cases: items pinned to bit 0, bit 63,
/// bit 64, and the last bit of the universe, where partial-word masks and
/// prefix-rank indexing are most fragile.
#[test]
fn word_boundary_pins_agree() {
    let cases: Vec<(Vec<Vec<u32>>, u32)> = vec![
        // single transaction exactly filling one word
        (vec![(0..64).collect()], 64),
        // one word plus one spilled bit
        (vec![(0..65).collect(), vec![64]], 65),
        // items only on the boundary bits of a two-word universe
        (vec![vec![0, 63, 64, 127], vec![63, 64], vec![0, 127]], 128),
        // empty transactions mixed with boundary hitters
        (vec![vec![], vec![63], vec![], vec![63, 64]], 65),
        // universe not divisible by 64, last partial word fully set
        (vec![(64..70).collect(), (64..70).collect()], 70),
    ];
    for (txs, num_items) in cases {
        let db = RecodedDatabase::from_dense(txs.clone(), num_items);
        for supp in [1u32, 2] {
            for family in FAMILIES {
                let want = mine_rep(family, Representation::Scalar, &db, supp);
                for rep in [Representation::Bitset, Representation::Gallop] {
                    let got = mine_rep(family, rep, &db, supp);
                    assert_eq!(
                        got, want,
                        "family {family} rep {rep} txs {txs:?} supp {supp}"
                    );
                }
            }
        }
    }
}

/// Degenerate inputs: every kernel of every family returns the same empty
/// answer without panicking (zero-width words, empty tid lists, empty
/// segment sets).
#[test]
fn degenerate_inputs_are_empty_everywhere() {
    let empties = [
        RecodedDatabase::from_dense(vec![], 0),
        RecodedDatabase::from_dense(vec![], 7),
        RecodedDatabase::from_dense(vec![vec![], vec![]], 0),
        RecodedDatabase::from_dense(vec![vec![], vec![]], 64),
    ];
    for db in &empties {
        for family in FAMILIES {
            for rep in ALL_REPS {
                assert!(
                    mine_rep(family, rep, db, 1).is_empty(),
                    "family {family} rep {rep}"
                );
            }
        }
    }
}

/// An unreachable minimum support yields empty output in every kernel
/// (the early-stop and elimination bounds must not underflow).
#[test]
fn unreachable_support_is_empty() {
    let db = RecodedDatabase::from_dense(vec![vec![0, 63, 64], vec![0, 64]], 65);
    for family in FAMILIES {
        for rep in ALL_REPS {
            assert!(
                mine_rep(family, rep, &db, 10).is_empty(),
                "family {family} rep {rep}"
            );
        }
    }
}

//! Paper §3.4: item-code and transaction orders affect only the running
//! time — the mined output (decoded to raw codes) must be identical under
//! every order combination, for every algorithm.

use closed_fim::prelude::*;
use fim_core::TransactionDatabase;
use proptest::collection::vec;
use proptest::prelude::*;

fn order_pairs() -> Vec<(ItemOrder, TransactionOrder)> {
    let mut out = Vec::new();
    for io in ItemOrder::ALL {
        for to in TransactionOrder::ALL {
            out.push((io, to));
        }
    }
    out
}

fn check_invariance(db: &TransactionDatabase, minsupp: u32, miner: &dyn ClosedMiner) {
    let mut reference: Option<MiningResult> = None;
    for (io, to) in order_pairs() {
        let got = mine_closed_with_orders(db, minsupp, miner, io, to);
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(
                &got,
                want,
                "{} changed output under {} / {}",
                miner.name(),
                io.label(),
                to.label()
            ),
        }
    }
}

#[test]
fn paper_example_every_order_every_miner() {
    let db = TransactionDatabase::from_named(&[
        vec!["a", "b", "c"],
        vec!["a", "d", "e"],
        vec!["b", "c", "d"],
        vec!["a", "b", "c", "d"],
        vec!["b", "c"],
        vec!["a", "b", "d"],
        vec!["d", "e"],
        vec!["c", "d", "e"],
    ]);
    let miners: Vec<Box<dyn ClosedMiner>> = vec![
        Box::new(IstaMiner::default()),
        Box::new(CarpenterTableMiner::default()),
        Box::new(CarpenterListMiner::default()),
        Box::new(FpCloseMiner),
        Box::new(LcmMiner),
    ];
    for minsupp in [1, 2, 3, 5] {
        for miner in &miners {
            check_invariance(&db, minsupp, miner.as_ref());
        }
    }
}

#[test]
fn preset_data_order_invariance() {
    let db = closed_fim::synth::Preset::Ncbi60.build(0.08, 5);
    check_invariance(&db, 3, &IstaMiner::default());
    check_invariance(&db, 3, &CarpenterTableMiner::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_databases_order_invariance(
        txs in vec(vec(0u32..7, 0..8usize), 1..10),
        minsupp in 1u32..4,
    ) {
        let db = TransactionDatabase::from_codes(txs);
        check_invariance(&db, minsupp, &IstaMiner::default());
        check_invariance(&db, minsupp, &CarpenterTableMiner::default());
        check_invariance(&db, minsupp, &LcmMiner);
    }
}

//! The central correctness property of the workspace: **all eight miners
//! return the identical collection of closed frequent item sets** on any
//! database, at any minimum support — each equal to the brute-force
//! reference.

use closed_fim::prelude::*;
use fim_core::reference::mine_reference;
use fim_core::RecodedDatabase;
use proptest::collection::vec;
use proptest::prelude::*;

fn all_miners() -> Vec<Box<dyn ClosedMiner>> {
    vec![
        Box::new(IstaMiner::default()),
        Box::new(CarpenterListMiner::default()),
        Box::new(CarpenterTableMiner::default()),
        Box::new(FpCloseMiner),
        Box::new(LcmMiner),
        Box::new(EclatMiner::default()),
        Box::new(DEclatMiner::default()),
        Box::new(SamMiner),
        Box::new(AprioriMiner),
        Box::new(NaiveCumulativeMiner),
    ]
}

#[test]
fn paper_example_all_miners_all_supports() {
    let db = RecodedDatabase::from_dense(
        vec![
            vec![0, 1, 2],
            vec![0, 3, 4],
            vec![1, 2, 3],
            vec![0, 1, 2, 3],
            vec![1, 2],
            vec![0, 1, 3],
            vec![3, 4],
            vec![2, 3, 4],
        ],
        5,
    );
    for minsupp in 1..=8 {
        let want = mine_reference(&db, minsupp);
        for miner in all_miners() {
            let got = miner.mine(&db, minsupp).canonicalized();
            assert_eq!(got, want, "{} at minsupp {}", miner.name(), minsupp);
        }
    }
}

#[test]
fn synthetic_presets_all_miners_agree() {
    use closed_fim::synth::Preset;
    // small instances of each preset; supports chosen so the slowest
    // baseline still finishes (debug builds are ~30x slower than release)
    let cases = [
        (Preset::Yeast, 0.03, 3u32),
        (Preset::Ncbi60, 0.08, 4),
        (Preset::Thrombin, 0.03, 2),
        (Preset::Webview, 0.03, 2),
    ];
    for (preset, scale, supp) in cases {
        let db = preset.build(scale, 11);
        let mut reference: Option<MiningResult> = None;
        for miner in all_miners() {
            // Apriori and SaM materialize *all* frequent sets; on the
            // gene-shaped presets a single large closed set implies an
            // exponential number of frequent subsets. Eclat variants
            // collapse perfect extensions but still walk large parts of
            // that space on the blocky expression data. These are
            // validated on small random databases instead (proptests).
            if matches!(miner.name(), "apriori" | "sam" | "eclat" | "declat") {
                continue;
            }
            let got = mine_closed(&db, supp, miner.as_ref());
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(&got, want, "{} on {}", miner.name(), preset.name());
                }
            }
        }
        let found = reference.unwrap();
        assert!(
            !found.is_empty(),
            "{} at supp {supp} found nothing — weak test",
            preset.name()
        );
    }
}

#[test]
fn mined_sets_are_closed_and_supports_exact() {
    use closed_fim::synth::Preset;
    let db = Preset::Ncbi60.build(0.1, 3);
    let result = mine_closed(&db, 4, &IstaMiner::default());
    assert!(!result.is_empty());
    for fs in &result.sets {
        // exact support by scanning the raw database
        assert_eq!(db.support(&fs.items), fs.support, "{:?}", fs.items);
        // closed: intersection of covering transactions equals the set
        let cover = db.cover(&fs.items);
        let mut inter: Option<ItemSet> = None;
        for &tid in &cover {
            let t = &db.transactions()[tid as usize];
            inter = Some(match inter {
                None => t.clone(),
                Some(acc) => acc.intersect(t),
            });
        }
        assert_eq!(inter.unwrap(), fs.items, "not closed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_databases_all_miners_agree(
        txs in vec(vec(0u32..8, 0..9usize), 0..12),
        minsupp in 1u32..5,
    ) {
        let db = RecodedDatabase::from_dense(txs, 8);
        let want = mine_reference(&db, minsupp);
        for miner in all_miners() {
            let got = miner.mine(&db, minsupp).canonicalized();
            prop_assert_eq!(&got, &want, "{}", miner.name());
        }
    }
}

//! # closed-fim
//!
//! Umbrella crate for the workspace reproducing *"Finding Closed Frequent
//! Item Sets by Intersecting Transactions"* (Borgelt et al., EDBT 2011).
//!
//! It re-exports the public API of every member crate so that applications
//! can depend on a single crate:
//!
//! ```
//! use closed_fim::prelude::*;
//!
//! let db = TransactionDatabase::from_named(&[
//!     vec!["a", "b", "c"],
//!     vec!["a", "d", "e"],
//!     vec!["b", "c", "d"],
//! ]);
//! let result = mine_closed(&db, 2, &IstaMiner::default());
//! assert!(result.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auto;

pub use fim_baseline as baseline;
pub use fim_carpenter as carpenter;
pub use fim_core as core;
pub use fim_io as io;
pub use fim_ista as ista;
pub use fim_rules as rules;
pub use fim_synth as synth;

/// The most commonly used types and functions, flattened.
pub mod prelude {
    pub use crate::auto::AutoMiner;
    pub use fim_baseline::{
        AprioriMiner, DEclatMiner, EclatMiner, FpCloseMiner, LcmMiner, NaiveCumulativeMiner,
        SamMiner,
    };
    pub use fim_carpenter::{CarpenterListMiner, CarpenterTableMiner};
    pub use fim_core::{
        closure, is_closed, mine_closed, mine_closed_with_orders, ClosedMiner, FoundSet, ItemOrder,
        ItemSet, MiningResult, RecodedDatabase, TransactionDatabase, TransactionOrder,
    };
    pub use fim_ista::IstaMiner;
    pub use fim_rules::{AssociationRule, RuleMiner};
}

//! Shape-based algorithm selection.
//!
//! The paper's central empirical finding is that the best algorithm
//! depends on the database shape: transaction intersection wins when there
//! are few transactions and very many items; item set enumeration wins in
//! the classic many-transactions regime. (Cobbler, the paper's reference
//! [16], switches between row and column enumeration *during* the search;
//! this dispatcher makes the coarser per-database choice up front, which
//! already captures most of the benefit on clearly-shaped inputs.)

use fim_baseline::LcmMiner;
use fim_core::{ClosedMiner, MiningResult, RecodedDatabase};
use fim_ista::IstaMiner;

/// Which algorithm the dispatcher selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Cumulative intersection (few transactions, many items).
    Intersection,
    /// Item set enumeration (many transactions, few items).
    Enumeration,
}

/// A miner that picks between IsTa and LCM based on the database shape.
///
/// The decision rule: intersect when the item count is at least
/// `ratio_threshold` times the transaction count. The paper's data sets
/// put the regimes far apart (yeast: 300 × 12,632 vs. BMS-WebView-1:
/// 59,602 × 497), so the threshold is not sensitive; 2.0 is the default.
#[derive(Clone, Copy, Debug)]
pub struct AutoMiner {
    /// Items-per-transaction ratio above which intersection is chosen.
    pub ratio_threshold: f64,
}

impl Default for AutoMiner {
    fn default() -> Self {
        AutoMiner {
            ratio_threshold: 2.0,
        }
    }
}

impl AutoMiner {
    /// The choice the dispatcher would make for `db`.
    pub fn choose(&self, db: &RecodedDatabase) -> Choice {
        let items = db.num_items() as f64;
        let txs = db.num_transactions().max(1) as f64;
        if items >= self.ratio_threshold * txs {
            Choice::Intersection
        } else {
            Choice::Enumeration
        }
    }
}

impl ClosedMiner for AutoMiner {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        match self.choose(db) {
            Choice::Intersection => IstaMiner::default().mine(db, minsupp),
            Choice::Enumeration => LcmMiner.mine(db, minsupp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    #[test]
    fn chooses_by_shape() {
        let auto = AutoMiner::default();
        // 2 transactions over 10 items → intersection
        let wide = RecodedDatabase::from_dense(vec![vec![0, 5, 9], vec![1, 5]], 10);
        assert_eq!(auto.choose(&wide), Choice::Intersection);
        // 10 transactions over 3 items → enumeration
        let tall = RecodedDatabase::from_dense(vec![vec![0, 1]; 10], 3);
        assert_eq!(auto.choose(&tall), Choice::Enumeration);
    }

    #[test]
    fn correct_in_both_regimes() {
        let auto = AutoMiner::default();
        let wide = RecodedDatabase::from_dense(
            vec![
                vec![0, 2, 4, 6, 8],
                vec![0, 1, 2, 3, 4],
                vec![4, 5, 6, 7, 8],
            ],
            9,
        );
        assert_eq!(
            auto.mine(&wide, 1).canonicalized(),
            mine_reference(&wide, 1)
        );
        let tall =
            RecodedDatabase::from_dense((0..12).map(|k| vec![k % 3, (k + 1) % 3]).collect(), 3);
        assert_eq!(
            auto.mine(&tall, 2).canonicalized(),
            mine_reference(&tall, 2)
        );
    }

    #[test]
    fn threshold_is_respected() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1, 2]; 2], 3);
        // 3 items, 2 transactions: ratio 1.5
        assert_eq!(
            AutoMiner {
                ratio_threshold: 1.0
            }
            .choose(&db),
            Choice::Intersection
        );
        assert_eq!(
            AutoMiner {
                ratio_threshold: 2.0
            }
            .choose(&db),
            Choice::Enumeration
        );
    }
}

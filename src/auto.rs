//! Shape-based algorithm selection.
//!
//! The paper's central empirical finding is that the best algorithm
//! depends on the database shape: transaction intersection wins when there
//! are few transactions and very many items; item set enumeration wins in
//! the classic many-transactions regime. (Cobbler, the paper's reference
//! [16], switches between row and column enumeration *during* the search;
//! this dispatcher makes the coarser per-database choice up front, which
//! already captures most of the benefit on clearly-shaped inputs.)
//!
//! Orthogonally to the row/column choice, the dispatcher picks the physical
//! tid-set kernel ([`Representation`]) from the measured database
//! [`Density`]: packed bitsets once there are enough transactions for the
//! word-AND + popcount stream to pay (tid-sets spanning several words),
//! galloping merges in the many-rows ultra-sparse tail, and sorted lists
//! everywhere tid-sets are short (see [`Representation::select`] for the
//! thresholds, calibrated against EXPERIMENTS.md E14).

use fim_baseline::{EclatMiner, LcmMiner};
use fim_core::{ClosedMiner, MiningResult, RecodedDatabase, Representation};
use fim_ista::{IstaConfig, IstaMiner};

/// Which algorithm the dispatcher selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Cumulative intersection (few transactions, many items).
    Intersection,
    /// Item set enumeration (many transactions, few items).
    Enumeration,
}

/// A miner that picks between IsTa and LCM based on the database shape,
/// and the tid-set kernel based on the database density.
///
/// The decision rule: intersect when the item count is at least
/// `ratio_threshold` times the transaction count. The paper's data sets
/// put the regimes far apart (yeast: 300 × 12,632 vs. BMS-WebView-1:
/// 59,602 × 497), so the threshold is not sensitive; 2.0 is the default.
///
/// A *degenerate* database — no transactions, no items, or no item
/// occurrences at all ([`Density::is_degenerate`]) — is routed to
/// enumeration with the scalar kernel explicitly, without consulting the
/// ratio test: every miner returns the same (empty) answer there, and a
/// ratio on a zero denominator is meaningless, so the dispatcher picks the
/// cheapest setup instead of fudging the division.
#[derive(Clone, Copy, Debug)]
pub struct AutoMiner {
    /// Items-per-transaction ratio above which intersection is chosen.
    pub ratio_threshold: f64,
    /// Kernel override: `None` selects by density, `Some(rep)` forces one
    /// (the CLI `--rep` flag).
    pub rep: Option<Representation>,
}

impl Default for AutoMiner {
    fn default() -> Self {
        AutoMiner {
            ratio_threshold: 2.0,
            rep: None,
        }
    }
}

impl AutoMiner {
    /// A dispatcher with a forced kernel (the density rule is bypassed).
    pub fn with_rep(rep: Representation) -> Self {
        AutoMiner {
            rep: Some(rep),
            ..AutoMiner::default()
        }
    }

    /// The choice the dispatcher would make for `db`.
    pub fn choose(&self, db: &RecodedDatabase) -> Choice {
        if db.density().is_degenerate() {
            return Choice::Enumeration;
        }
        let items = db.num_items() as f64;
        let txs = db.num_transactions() as f64;
        if items >= self.ratio_threshold * txs {
            Choice::Intersection
        } else {
            Choice::Enumeration
        }
    }

    /// The kernel the dispatcher would run for `db`: the forced override
    /// when one is set, otherwise the density rule of
    /// [`Representation::select`].
    pub fn choose_rep(&self, db: &RecodedDatabase) -> Representation {
        self.rep
            .unwrap_or_else(|| Representation::select(&db.density()))
    }
}

impl ClosedMiner for AutoMiner {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn mine(&self, db: &RecodedDatabase, minsupp: u32) -> MiningResult {
        let rep = self.choose_rep(db);
        match self.choose(db) {
            Choice::Intersection => {
                // ista has a bitset segment kernel; galloping has no ista
                // analog (the epoch probe is already O(1)), so it runs the
                // scalar path
                let rep = if rep == Representation::Bitset {
                    rep
                } else {
                    Representation::Scalar
                };
                IstaMiner::with_config(IstaConfig::with_rep(rep)).mine(db, minsupp)
            }
            Choice::Enumeration => {
                // LCM carries no tid sets at all, so a kernel selection
                // routes to the kernelized Eclat instead
                if rep == Representation::Scalar {
                    LcmMiner.mine(db, minsupp)
                } else {
                    EclatMiner::with_rep(rep).mine(db, minsupp)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fim_core::reference::mine_reference;

    #[test]
    fn chooses_by_shape() {
        let auto = AutoMiner::default();
        // 2 transactions over 10 items → intersection
        let wide = RecodedDatabase::from_dense(vec![vec![0, 5, 9], vec![1, 5]], 10);
        assert_eq!(auto.choose(&wide), Choice::Intersection);
        // 10 transactions over 3 items → enumeration
        let tall = RecodedDatabase::from_dense(vec![vec![0, 1]; 10], 3);
        assert_eq!(auto.choose(&tall), Choice::Enumeration);
    }

    #[test]
    fn degenerate_databases_choose_enumeration_scalar_explicitly() {
        let auto = AutoMiner::default();
        // no transactions: the ratio test would divide by zero — the old
        // max(1) fudge routed "0 transactions, 1+ items" to intersection
        // as a side effect; now the routing is explicit
        let no_txs = RecodedDatabase::from_dense(vec![], 7);
        assert_eq!(auto.choose(&no_txs), Choice::Enumeration);
        assert_eq!(auto.choose_rep(&no_txs), Representation::Scalar);
        assert!(auto.mine(&no_txs, 1).is_empty());
        // no items
        let no_items = RecodedDatabase::from_dense(vec![vec![], vec![]], 0);
        assert_eq!(auto.choose(&no_items), Choice::Enumeration);
        assert!(auto.mine(&no_items, 1).is_empty());
        // transactions and items exist but every transaction is empty
        let no_ones = RecodedDatabase::from_dense(vec![vec![], vec![]], 4);
        assert_eq!(auto.choose(&no_ones), Choice::Enumeration);
        assert_eq!(auto.choose_rep(&no_ones), Representation::Scalar);
        assert!(auto.mine(&no_ones, 1).is_empty());
    }

    #[test]
    fn rep_follows_density_and_override() {
        let auto = AutoMiner::default();
        // fully dense with enough rows for word-parallelism to pay → bitset
        let dense = RecodedDatabase::from_dense(vec![(0..8).collect::<Vec<u32>>(); 300], 8);
        assert_eq!(auto.choose_rep(&dense), Representation::Bitset);
        // same fill but only a handful of rows: tid-sets fit one word, the
        // scalar cursors win (E14), so the dispatcher keeps scalar
        let short = RecodedDatabase::from_dense(vec![(0..8).collect::<Vec<u32>>(); 4], 8);
        assert_eq!(auto.choose_rep(&short), Representation::Scalar);
        // an override wins over the density rule
        assert_eq!(
            AutoMiner::with_rep(Representation::Scalar).choose_rep(&dense),
            Representation::Scalar
        );
        assert_eq!(
            AutoMiner::with_rep(Representation::Gallop).choose_rep(&dense),
            Representation::Gallop
        );
    }

    #[test]
    fn correct_in_both_regimes() {
        let auto = AutoMiner::default();
        let wide = RecodedDatabase::from_dense(
            vec![
                vec![0, 2, 4, 6, 8],
                vec![0, 1, 2, 3, 4],
                vec![4, 5, 6, 7, 8],
            ],
            9,
        );
        assert_eq!(
            auto.mine(&wide, 1).canonicalized(),
            mine_reference(&wide, 1)
        );
        let tall =
            RecodedDatabase::from_dense((0..12).map(|k| vec![k % 3, (k + 1) % 3]).collect(), 3);
        assert_eq!(
            auto.mine(&tall, 2).canonicalized(),
            mine_reference(&tall, 2)
        );
    }

    #[test]
    fn forced_kernels_mine_identically() {
        let db = RecodedDatabase::from_dense(
            vec![
                vec![0, 1, 2, 5],
                vec![1, 2, 3],
                vec![0, 2, 3, 4],
                vec![1, 4, 5],
            ],
            6,
        );
        let want = mine_reference(&db, 2);
        for rep in [
            Representation::Scalar,
            Representation::Bitset,
            Representation::Gallop,
        ] {
            let got = AutoMiner::with_rep(rep).mine(&db, 2).canonicalized();
            assert_eq!(got, want, "rep={rep}");
        }
    }

    #[test]
    fn threshold_is_respected() {
        let db = RecodedDatabase::from_dense(vec![vec![0, 1, 2]; 2], 3);
        // 3 items, 2 transactions: ratio 1.5
        assert_eq!(
            AutoMiner {
                ratio_threshold: 1.0,
                ..AutoMiner::default()
            }
            .choose(&db),
            Choice::Intersection
        );
        assert_eq!(
            AutoMiner {
                ratio_threshold: 2.0,
                ..AutoMiner::default()
            }
            .choose(&db),
            Choice::Enumeration
        );
    }
}
